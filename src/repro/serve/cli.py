"""``python -m repro.serve`` — run a seeded serving trace and report.

Generates a reproducible request workload, serves it with the
continuous-batching engine on the compiled VM (abstract mode, analytical
device clock), then prints TTFT/TPOT/ITL percentiles, throughput and
goodput.  Optionally writes the metrics JSON and a Perfetto timeline
(one track per request).

Examples::

    python -m repro.serve --seed 0 --requests 64 --device rtx4090
    python -m repro.serve --model tiny-llama --rate 16 --eviction recompute
    python -m repro.serve --out metrics.json --trace serve_trace.json
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Optional, Sequence

from ..obs.cli import DEVICES, MODELS
from ..runtime.device import ALL_DEVICES
from .engine import EngineConfig, ServingEngine
from .scheduler import SchedulerConfig
from .workload import WorkloadConfig, generate, workload_to_json

#: Model choices for the heterogeneous request types.
WHISPER_MODELS = {
    "tiny-whisper": "TINY_WHISPER",
    "whisper-large-v3": "WHISPER_LARGE_V3",
}
DENOISE_MODELS = {
    "tiny-denoise": "TINY_DENOISE",
    "dit-base": "DIT_BASE",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a seeded request trace with continuous batching "
                    "and a paged KV cache on the simulated VM.",
    )
    parser.add_argument("--model", choices=sorted(MODELS), default="tiny-llama")
    parser.add_argument("--device", choices=sorted(DEVICES), default="rtx4090")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--rate", type=float, default=8.0,
                        help="mean arrival rate (requests/s)")
    parser.add_argument("--arrival", choices=("poisson", "gamma"),
                        default="poisson")
    parser.add_argument("--arrival-cv", type=float, default=2.0,
                        help="coefficient of variation for gamma arrivals")
    parser.add_argument("--prompt-min", type=int, default=8)
    parser.add_argument("--prompt-max", type=int, default=64)
    parser.add_argument("--output-min", type=int, default=4)
    parser.add_argument("--output-max", type=int, default=32)
    parser.add_argument("--prefix-families", type=int, default=0,
                        help="shared-prefix workload: number of prompt "
                             "families (0 = legacy length-only trace)")
    parser.add_argument("--prefix-len", type=int, default=0,
                        help="common prefix tokens per family "
                             "(must be < --prompt-min)")
    parser.add_argument("--no-prefix-cache", action="store_true",
                        help="disable the radix prefix cache")
    parser.add_argument("--whisper-frac", type=float, default=0.0,
                        help="fraction of requests that are Whisper "
                             "transcriptions (heterogeneous mix)")
    parser.add_argument("--denoise-frac", type=float, default=0.0,
                        help="fraction of requests that are iterative "
                             "denoise jobs (heterogeneous mix)")
    parser.add_argument("--whisper-model", choices=sorted(WHISPER_MODELS),
                        default="tiny-whisper")
    parser.add_argument("--denoise-model", choices=sorted(DENOISE_MODELS),
                        default="tiny-denoise")
    parser.add_argument("--whisper-frames-min", type=int, default=8)
    parser.add_argument("--whisper-frames-max", type=int, default=12)
    parser.add_argument("--denoise-steps-min", type=int, default=4)
    parser.add_argument("--denoise-steps-max", type=int, default=16)
    parser.add_argument("--dp", type=int, default=1,
                        help="data-parallel replicas: serve the trace "
                             "across N engines behind a router (1 = the "
                             "plain single engine)")
    parser.add_argument("--route", default="rr", metavar="POLICY",
                        help="routing policy for --dp > 1: rr/round_robin, "
                             "lb/least_loaded, affinity/prefix_affinity")
    parser.add_argument("--page-size", type=int, default=16)
    parser.add_argument("--kv-blocks", type=int, default=None,
                        help="KV pool size in blocks (default: from VRAM)")
    parser.add_argument("--max-num-seqs", type=int, default=16)
    parser.add_argument("--max-batched-tokens", type=int, default=256)
    parser.add_argument("--prefill-chunk", type=int, default=64,
                        help="chunked-prefill cap per sequence (0 disables "
                             "chunking)")
    parser.add_argument("--eviction", choices=("swap", "recompute"),
                        default="swap")
    parser.add_argument("--spec-tokens", type=int, default=0,
                        help="speculative decoding: draft tokens proposed "
                             "per step (0 disables speculation)")
    parser.add_argument("--draft-quality", type=float, default=0.8,
                        help="per-position probability the draft matches "
                             "the target (acceptance converges here)")
    parser.add_argument("--spec-seed", type=int, default=0,
                        help="token-oracle seed (a vanilla run with the "
                             "same seed emits the same token stream)")
    parser.add_argument("--spec-adaptive", action="store_true",
                        help="acceptance-aware speculative width control")
    parser.add_argument("--slo-ttft", type=float, default=1.0)
    parser.add_argument("--slo-tpot", type=float, default=0.1)
    parser.add_argument("--no-cuda-graph", action="store_true")
    parser.add_argument("--out", metavar="METRICS.json", default=None,
                        help="write the metrics/report JSON here")
    parser.add_argument("--trace", metavar="TRACE.json", default=None,
                        help="write the Perfetto timeline here")
    parser.add_argument("--workload-out", metavar="WORKLOAD.json",
                        default=None,
                        help="write the generated request trace here")
    parser.add_argument("--telemetry", metavar="TELEMETRY.json",
                        default=None,
                        help="enable serve-layer telemetry and write the "
                             "metrics registry / spans / SLO snapshot here")
    parser.add_argument("--prometheus", metavar="METRICS.prom", default=None,
                        help="enable telemetry and write Prometheus text "
                             "exposition here")
    parser.add_argument("--telemetry-window", type=float, default=None,
                        metavar="SECONDS",
                        help="sliding window for telemetry latency "
                             "histograms (simulated seconds; default: "
                             "whole run)")
    return parser


#: CLI spellings of the routing policies (short and full names).
ROUTE_ALIASES = {
    "rr": "round_robin",
    "round_robin": "round_robin",
    "lb": "least_loaded",
    "least_loaded": "least_loaded",
    "affinity": "prefix_affinity",
    "prefix_affinity": "prefix_affinity",
}


def _validate_cluster_args(args) -> str:
    """Check the --dp/--route combination; returns the resolved policy
    name.  Raises SystemExit with an actionable message otherwise."""
    if args.dp < 1:
        raise SystemExit(
            f"--dp must be >= 1 (got {args.dp}): it is the number of "
            f"data-parallel engine replicas; use --dp 1 for a single "
            f"engine"
        )
    policy = ROUTE_ALIASES.get(args.route)
    if policy is None:
        options = ", ".join(sorted(set(ROUTE_ALIASES)))
        raise SystemExit(
            f"--route {args.route!r} is not a routing policy; "
            f"choose one of: {options}"
        )
    if args.dp > 1:
        if args.telemetry or args.prometheus:
            raise SystemExit(
                "--dp > 1 does not support --telemetry/--prometheus yet "
                "(per-replica telemetry is not merged at the fleet "
                "level); drop those flags or run with --dp 1"
            )
        if args.whisper_frac > 0 or args.denoise_frac > 0:
            raise SystemExit(
                "--dp > 1 serves LLM-only traces (the router has no "
                "placement model for heterogeneous requests); drop "
                "--whisper-frac/--denoise-frac or run with --dp 1"
            )
    return policy


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    route_policy = _validate_cluster_args(args)
    cfg = MODELS[args.model]
    device = ALL_DEVICES[DEVICES[args.device]]

    workload = WorkloadConfig(
        num_requests=args.requests,
        seed=args.seed,
        arrival=args.arrival,
        arrival_rate=args.rate,
        arrival_cv=args.arrival_cv,
        prompt_min=args.prompt_min,
        prompt_max=min(args.prompt_max, cfg.context_length // 2),
        output_min=args.output_min,
        output_max=args.output_max,
        prefix_families=args.prefix_families,
        prefix_len=args.prefix_len,
        whisper_fraction=args.whisper_frac,
        denoise_fraction=args.denoise_frac,
        whisper_frames_min=args.whisper_frames_min,
        whisper_frames_max=args.whisper_frames_max,
        denoise_steps_min=args.denoise_steps_min,
        denoise_steps_max=args.denoise_steps_max,
    )
    whisper_config = None
    denoise_config = None
    if args.whisper_frac > 0:
        import dataclasses

        from ..models import whisper as whisper_models

        whisper_config = getattr(
            whisper_models, WHISPER_MODELS[args.whisper_model])
        # Size the compiled bounds (memory planning / graph capture) to
        # the workload actually being served.
        whisper_config = dataclasses.replace(
            whisper_config,
            max_frames=args.whisper_frames_max,
            max_target=max(whisper_config.max_target, args.output_max + 1),
        )
        if whisper_config.enc_positions > args.max_batched_tokens:
            raise SystemExit(
                f"--max-batched-tokens ({args.max_batched_tokens}) is "
                f"smaller than the atomic cross-KV projection of "
                f"{args.whisper_model} ({whisper_config.enc_positions} "
                f"encoder positions); raise the budget or shrink "
                f"--whisper-frames-max"
            )
    if args.denoise_frac > 0:
        from ..models import denoise as denoise_models

        denoise_config = getattr(
            denoise_models, DENOISE_MODELS[args.denoise_model])
    spec_config = None
    if args.spec_tokens > 0:
        from .spec import SpecConfig

        spec_config = SpecConfig(
            num_spec_tokens=args.spec_tokens,
            draft_quality=args.draft_quality,
            seed=args.spec_seed,
            adaptive=args.spec_adaptive,
        )
    engine_config = EngineConfig(
        page_size=args.page_size,
        num_blocks=args.kv_blocks,
        enable_prefix_caching=not args.no_prefix_cache,
        scheduler=SchedulerConfig(
            max_num_seqs=args.max_num_seqs,
            max_num_batched_tokens=args.max_batched_tokens,
            prefill_chunk=args.prefill_chunk or None,
            eviction=args.eviction,
        ),
        slo_ttft_s=args.slo_ttft,
        slo_tpot_s=args.slo_tpot,
        spec=spec_config,
    )
    if args.telemetry or args.prometheus:
        from .telemetry import TelemetryConfig

        engine_config.telemetry = TelemetryConfig(
            window_s=args.telemetry_window,
            # Kernel capture only pays off when a Perfetto file is
            # being written (that's where the merged events land).
            capture_kernels=bool(args.trace),
        )

    if args.dp > 1:
        return _run_cluster(
            args, cfg, device, engine_config, workload, route_policy,
        )

    engine = ServingEngine(
        cfg, device, engine_config,
        whisper_config=whisper_config,
        denoise_config=denoise_config,
        enable_cuda_graph=not args.no_cuda_graph,
    )
    report = engine.run(generate(workload))
    s = report.summary

    print(f"== repro.serve: {cfg.name} on {device.name} "
          f"(seed {args.seed}, {args.requests} requests) ==")
    print(f"finished          {s['num_finished']}/{s['num_requests']} "
          f"in {s['makespan_s']:.3f} simulated s "
          f"({len(report.iterations)} iterations)")
    print(f"throughput        {s['throughput_tokens_per_s']:.1f} tok/s, "
          f"{s['throughput_requests_per_s']:.2f} req/s")
    print(f"goodput           {s['goodput_requests_per_s']:.2f} req/s "
          f"({s['slo']['fraction'] * 100:.0f}% within "
          f"TTFT<={s['slo']['ttft_s']}s, TPOT<={s['slo']['tpot_s']}s)")
    def _ms(v):
        return f"{v * 1e3:8.2f} ms" if v is not None else "       - ms"

    for metric in ("ttft_s", "tpot_s", "itl_s"):
        row = s[metric]
        print(f"{metric:<17} p50 {_ms(row['p50'])}   "
              f"p90 {_ms(row['p90'])}   "
              f"p99 {_ms(row['p99'])}")
    pool = s["kv_pool"]
    print(f"kv pool           {pool['num_blocks']} blocks x "
          f"{pool['page_size']} tokens, peak util "
          f"{pool['peak_utilization'] * 100:.0f}% "
          f"(raw {pool['peak_raw_utilization'] * 100:.0f}%), "
          f"cow copies {pool['cow_copies']}, "
          f"leaked {pool['leaked_blocks']}")
    if "prefix_cache" in s:
        pc = s["prefix_cache"]
        print(f"prefix cache      hit rate {pc['hit_rate'] * 100:.0f}% "
              f"({pc['hits']}/{pc['lookups']} lookups), "
              f"cached tokens {pc['matched_tokens']}/"
              f"{pc['requested_tokens']} "
              f"({pc['cached_token_fraction'] * 100:.0f}%), "
              f"evictions {pc['evictions']}")
    if "spec_decode" in s:
        sd = s["spec_decode"]
        rate = sd["acceptance_rate"]
        per_pos = sd["per_position_acceptance"]
        print(f"speculation       k={sd['num_spec_tokens']} "
              f"draft={sd['draft_model']}, accepted "
              f"{sd['accepted']}/{sd['proposed']} drafts "
              f"({rate * 100:.0f}%)" if rate is not None else
              f"speculation       k={sd['num_spec_tokens']} (no proposals)")
        if per_pos is not None:
            print(f"                  per-position acceptance "
                  f"{per_pos * 100:.0f}% "
                  f"(configured quality {sd['draft_quality'] * 100:.0f}%)")
    print(f"preemptions       {s['preemptions']} "
          f"(swap time {s['swap_time_s'] * 1e3:.2f} ms)")
    if report.telemetry is not None:
        tl = s["telemetry"]
        counts = tl["anomaly_counts"]
        anomalies = (
            ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            if counts else "none"
        )
        def _pct(v):
            return f"{v * 100:.0f}%" if v is not None else "-"

        print(f"telemetry         {tl['num_metrics']} metrics, "
              f"{tl['num_spans']} spans; window attainment "
              f"ttft {_pct(tl['window_ttft_attainment'])} / "
              f"tpot {_pct(tl['window_tpot_attainment'])}; "
              f"anomalies: {anomalies}")
    if "per_type" in s:
        for kind, row in s["per_type"].items():
            print(f"[{kind}]".ljust(18)
                  + f"{row['num_finished']}/{row['num_requests']} finished, "
                  f"ttft p50 {_ms(row['ttft_s']['p50'])}, "
                  f"step p50 {_ms(row['tpot_s']['p50'])}, "
                  f"p99 {_ms(row['tpot_s']['p99'])}")

    for path in (args.workload_out, args.out, args.trace,
                 args.telemetry, args.prometheus):
        if path and os.path.dirname(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
    if args.workload_out:
        with open(args.workload_out, "w") as f:
            f.write(workload_to_json(workload, generate(workload)))
        print(f"workload  -> {args.workload_out}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
        print(f"metrics   -> {args.out}")
    if args.trace:
        report.export_chrome_trace(args.trace)
        print(f"perfetto  -> {args.trace}  "
              f"(open at https://ui.perfetto.dev)")
    if args.telemetry:
        with open(args.telemetry, "w") as f:
            json.dump(report.telemetry.to_dict(), f, indent=2,
                      sort_keys=True)
        print(f"telemetry -> {args.telemetry}")
    if args.prometheus:
        with open(args.prometheus, "w") as f:
            f.write(report.telemetry.to_prometheus())
        print(f"prometheus-> {args.prometheus}")
    return 0


def _run_cluster(args, cfg, device, engine_config, workload,
                 policy: str) -> int:
    from .cluster import ClusterConfig, ClusterEngine

    cluster = ClusterEngine(
        cfg, device,
        ClusterConfig(dp=args.dp, policy=policy, engine=engine_config),
        enable_cuda_graph=not args.no_cuda_graph,
    )
    requests = generate(workload)
    report = cluster.run(requests)
    s = report.summary

    print(f"== repro.serve cluster: {cfg.name} x{args.dp} on {device.name} "
          f"(seed {args.seed}, {args.requests} requests, "
          f"route={policy}) ==")
    print(f"finished          {s['num_finished']}/{s['num_requests']} "
          f"in {s['makespan_s']:.3f} simulated s")
    print(f"throughput        {s['throughput_tokens_per_s']:.1f} tok/s, "
          f"{s['throughput_requests_per_s']:.2f} req/s")
    print(f"goodput           {s['goodput_requests_per_s']:.2f} req/s "
          f"({s['slo']['fraction'] * 100:.0f}% within "
          f"TTFT<={s['slo']['ttft_s']}s, TPOT<={s['slo']['tpot_s']}s)")

    def _ms(v):
        return f"{v * 1e3:8.2f} ms" if v is not None else "       - ms"

    for metric in ("ttft_s", "tpot_s", "itl_s"):
        row = s[metric]
        print(f"{metric:<17} p50 {_ms(row['p50'])}   "
              f"p90 {_ms(row['p90'])}   "
              f"p99 {_ms(row['p99'])}")
    routing = s["routing"]
    print(f"routing           {routing['assignments']} requests/replica, "
          f"balance entropy {routing['load_balance_entropy']:.3f}")
    if "prefix_cache" in s:
        pc = s["prefix_cache"]
        print(f"prefix cache      fleet hit rate {pc['hit_rate'] * 100:.0f}% "
              f"({pc['hits']}/{pc['lookups']} lookups), cached tokens "
              f"{pc['matched_tokens']}/{pc['requested_tokens']} "
              f"({pc['cached_token_fraction'] * 100:.0f}%)")
    fleet_slo = s["fleet_slo"]
    counts = fleet_slo["anomaly_counts"]
    anomalies = (
        ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        if counts else "none"
    )
    print(f"fleet slo         {fleet_slo['violations']} violations / "
          f"{fleet_slo['finished']} finished; anomalies: {anomalies}")
    for row in s["per_replica"]:
        ttft = row["ttft_mean_s"]
        ttft_txt = f"{ttft * 1e3:.2f} ms" if ttft is not None else "-"
        line = (f"[replica {row['replica']}]".ljust(18)
                + f"{row['num_requests']} reqs, "
                f"makespan {row['makespan_s']:.3f}s, "
                f"ttft mean {ttft_txt}, "
                f"kv peak {row['kv_peak_utilization'] * 100:.0f}%")
        if "prefix_cache_hit_rate" in row:
            line += f", cache hits {row['prefix_cache_hit_rate'] * 100:.0f}%"
        print(line)

    for path in (args.workload_out, args.out, args.trace):
        if path and os.path.dirname(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
    if args.workload_out:
        with open(args.workload_out, "w") as f:
            f.write(workload_to_json(workload, requests))
        print(f"workload  -> {args.workload_out}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
        print(f"metrics   -> {args.out}")
    if args.trace:
        report.export_chrome_trace(args.trace)
        print(f"perfetto  -> {args.trace}  "
              f"(open at https://ui.perfetto.dev)")
    return 0
