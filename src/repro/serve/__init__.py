"""repro.serve — continuous-batching LLM serving on the compiled VM.

A seeded discrete-event serving engine (paged KV cache, Orca-style
iteration-level scheduling, chunked prefill) whose per-iteration costs
come from running the real compiled Executable in abstract mode on the
analytical device model.  ``python -m repro.serve --help`` for the CLI.
"""

from .engine import EngineConfig, ServeReport, ServingEngine, serve_workload
from .kv_cache import (
    BlockAllocator,
    CacheError,
    OutOfBlocks,
    PagedKVCache,
    ReleaseInfo,
)
from .metrics import RequestMetrics, percentile, summarize
from .prefix_cache import PrefixCache, PrefixCacheStats
from .scheduler import (
    ContinuousBatchingScheduler,
    Iteration,
    Phase,
    RequestState,
    SchedulerConfig,
)
from .workload import (
    Request,
    WorkloadConfig,
    generate,
    workload_from_json,
    workload_to_json,
)

__all__ = [
    "BlockAllocator",
    "CacheError",
    "ContinuousBatchingScheduler",
    "EngineConfig",
    "Iteration",
    "OutOfBlocks",
    "PagedKVCache",
    "Phase",
    "PrefixCache",
    "PrefixCacheStats",
    "ReleaseInfo",
    "Request",
    "RequestMetrics",
    "RequestState",
    "SchedulerConfig",
    "ServeReport",
    "ServingEngine",
    "WorkloadConfig",
    "generate",
    "percentile",
    "serve_workload",
    "summarize",
    "workload_from_json",
    "workload_to_json",
]
