"""repro.serve — continuous-batching LLM serving on the compiled VM.

A seeded discrete-event serving engine (paged KV cache, Orca-style
iteration-level scheduling, chunked prefill) whose per-iteration costs
come from running the real compiled Executable in abstract mode on the
analytical device model.  ``python -m repro.serve --help`` for the CLI.
"""

from .cluster import (
    ClusterConfig,
    ClusterEngine,
    ClusterReport,
    LeastLoadedPolicy,
    PrefixAffinityPolicy,
    ReplicaView,
    ROUTING_POLICIES,
    RoundRobinPolicy,
    RoutingPolicy,
    make_policy,
    serve_cluster,
)
from .engine import EngineConfig, ServeReport, ServingEngine, serve_workload
from .kv_cache import (
    BlockAllocator,
    CacheError,
    OutOfBlocks,
    PagedKVCache,
    ReleaseInfo,
)
from .metrics import RequestMetrics, percentile, summarize
from .prefix_cache import PrefixCache, PrefixCacheStats
from .program import (
    ChunkedPhase,
    DenoiseProgram,
    LLMProgram,
    RequestProgram,
    SteppedPhase,
    WhisperProgram,
    program_for,
    stream_seq_id,
)
from .scheduler import (
    ContinuousBatchingScheduler,
    Iteration,
    Phase,
    RequestState,
    SchedulerConfig,
)
from .slo import SLOConfig, SLOMonitor
from .spec import SpecConfig, TokenOracle
from .telemetry import (
    Counter,
    EngineTelemetry,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryConfig,
)
from .workload import (
    Request,
    WorkloadConfig,
    generate,
    workload_from_json,
    workload_to_json,
)

__all__ = [
    "BlockAllocator",
    "CacheError",
    "ChunkedPhase",
    "ClusterConfig",
    "ClusterEngine",
    "ClusterReport",
    "LeastLoadedPolicy",
    "PrefixAffinityPolicy",
    "ROUTING_POLICIES",
    "ReplicaView",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "make_policy",
    "serve_cluster",
    "ContinuousBatchingScheduler",
    "Counter",
    "DenoiseProgram",
    "EngineConfig",
    "EngineTelemetry",
    "Gauge",
    "Histogram",
    "Iteration",
    "MetricsRegistry",
    "LLMProgram",
    "OutOfBlocks",
    "PagedKVCache",
    "Phase",
    "PrefixCache",
    "PrefixCacheStats",
    "ReleaseInfo",
    "Request",
    "RequestMetrics",
    "RequestProgram",
    "RequestState",
    "SLOConfig",
    "SLOMonitor",
    "SchedulerConfig",
    "ServeReport",
    "ServingEngine",
    "SpecConfig",
    "SteppedPhase",
    "TelemetryConfig",
    "TokenOracle",
    "WhisperProgram",
    "WorkloadConfig",
    "generate",
    "percentile",
    "program_for",
    "serve_workload",
    "stream_seq_id",
    "summarize",
    "workload_from_json",
    "workload_to_json",
]
