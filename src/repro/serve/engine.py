"""The serving engine: continuous batching on the compiled VM.

A seeded discrete-event simulation whose per-iteration costs come from
the *real* compiled artifact: every decode batch issues one
``decode_paged`` call and every prefill chunk one ``prefill`` call on a
``VirtualMachine`` in abstract mode, so the clock advances by whatever
the analytical device model meters for the actual instruction stream —
kernel launches, CUDA-graph capture/replay, allocator behaviour and all.
Host⇄device KV swaps (preemption recovery) are charged analytically
against the device's host-link bandwidth.

Iteration timing uses ``ExecutionStats.copy()``/``delta()`` snapshots —
never ``reset_stats()`` — so the shared VM's pool keeps recycling across
iterations exactly as an uninterrupted run would, and the sum of
per-iteration deltas equals the end-to-end totals.

Prefill chunks run through the ``prefill_paged`` entry: new K/V slices
are written straight into the shared page pool (no contiguous-cache
staging), and attention over the ``past`` tokens gathers through the
block table — the same data path the real paged kernels use, verified
bit-exact against the dense ``prefill`` entry in the model tests.

With prefix caching enabled (:class:`EngineConfig.enable_prefix_caching`,
the default) a :class:`~repro.serve.prefix_cache.PrefixCache` indexes
finished prompts' full pages; later prompts sharing a prefix attach
those blocks instead of recomputing them.  See
:mod:`repro.serve.kv_cache` for the shared-ownership model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..models.llama import LlamaConfig, build_llama
from ..runtime import NDArray, VirtualMachine
from ..runtime.device import Device
from ..runtime.profiler import ExecutionStats
from .kv_cache import CacheError, PagedKVCache
from .metrics import RequestMetrics, summarize
from .prefix_cache import PrefixCache
from .program import program_for
from .spec import SpecConfig, TokenOracle
from .telemetry import EngineTelemetry, TelemetryConfig
from .scheduler import (
    ContinuousBatchingScheduler,
    Iteration,
    Phase,
    RequestState,
    SchedulerConfig,
)
from .workload import Request, WorkloadConfig, generate


class _RunState:
    """Mutable state of one in-flight serving run.

    Everything :meth:`ServingEngine.run` used to keep in local variables
    lives here so the run can be driven incrementally — ``submit()`` /
    ``step()`` / ``drain()`` / ``report()`` — by an outer coordinator
    (the data-parallel :class:`~repro.serve.cluster.ClusterEngine`
    interleaves N of these the way ``MeshExecutor`` interleaves
    per-shard VMs).  Dropped wholesale by ``report()``; the engine's
    compiled VMs persist across runs.
    """

    def __init__(self, *, kv: PagedKVCache, cache: Optional[PrefixCache],
                 sched: ContinuousBatchingScheduler, oracle: TokenOracle,
                 tel: Optional[EngineTelemetry], denoise_budget: int,
                 token_bytes: int, ctl_cap: int,
                 stats_start: List[ExecutionStats]):
        self.kv = kv
        self.cache = cache
        self.sched = sched
        self.oracle = oracle
        self.tel = tel
        self.denoise_budget = denoise_budget
        self.token_bytes = token_bytes
        self.stats_start = stats_start
        #: Submitted requests in submission order (report order).
        self.requests: List[Request] = []
        self.states: Dict[int, RequestState] = {}
        #: Submitted but not yet admitted, sorted by (arrival_s, req_id).
        self.pending: List[Request] = []
        self.clock = 0.0
        self.iterations: List[Dict[str, Any]] = []
        self.trace_events: List[Dict[str, Any]] = []
        self.queue_samples: List[int] = []
        self.util_samples: List[float] = []
        self.swap_total_s = 0.0
        # Acceptance-aware speculative-width controller state (windowed
        # proposal/accept counters); inert unless ``spec.adaptive``.
        self.ctl_proposed = 0
        self.ctl_accepted = 0
        self.ctl_cap = ctl_cap


@dataclass
class EngineConfig:
    page_size: int = 16
    #: KV blocks in the device pool; ``None`` sizes the pool from the
    #: device's VRAM minus weights, capped at ``max_kv_blocks``.
    num_blocks: Optional[int] = None
    max_kv_blocks: int = 4096
    #: Fraction of post-weights VRAM granted to the KV pool.
    kv_memory_fraction: float = 0.9
    #: Host-link bandwidth for swap preemption (bytes/s).  PCIe 4.0 x16
    #: ballpark; the analytical device model does not model the host link.
    host_link_bandwidth: float = 16e9
    #: Share prompt-prefix KV blocks across requests (radix prefix cache).
    enable_prefix_caching: bool = True
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    slo_ttft_s: float = 1.0
    slo_tpot_s: float = 0.1
    #: Speculative decoding (draft/verify).  ``None`` — the default —
    #: keeps the engine byte-identical to its vanilla behaviour: same
    #: schedule, same records, same trace, same summary JSON.
    spec: Optional[SpecConfig] = None
    #: Serve-layer telemetry (:mod:`repro.serve.telemetry`).  ``None`` —
    #: the default — emits no telemetry and keeps summary/trace bytes
    #: identical to the untelemetered engine (pinned by baseline-hash
    #: tests); any config object turns on the metrics registry,
    #: lifecycle spans and the SLO monitor.
    telemetry: Optional[TelemetryConfig] = None
    #: Tensor-parallel width.  ``tp > 1`` builds the sharded module
    #: (Megatron column/row-parallel blocks, head-sharded KV pools) and
    #: serves it on a :class:`~repro.dist.MeshExecutor` of ``tp`` device
    #: models; ``tp=1`` — the default — is byte-identical to the
    #: unsharded engine.
    tp: int = 1
    #: Link model for the mesh collectives (``repro.dist.NVLINK`` /
    #: ``PCIE`` / any :class:`~repro.dist.Interconnect`).  ``None``
    #: defaults to the NVLink-class preset when ``tp > 1``.
    interconnect: Optional[Any] = None


class ServingEngine:
    def __init__(
        self,
        cfg: LlamaConfig,
        device: Device,
        engine_config: Optional[EngineConfig] = None,
        *,
        whisper_config: Optional[Any] = None,
        denoise_config: Optional[Any] = None,
        enable_library_dispatch: bool = True,
        enable_cuda_graph: bool = True,
    ):
        from ..bench.relax_runner import (
            RelaxDenoise,
            RelaxLLM,
            RelaxSpecPair,
            RelaxWhisper,
        )

        self.cfg = cfg
        self.device = device
        self.econfig = engine_config or EngineConfig()
        page = self.econfig.page_size
        bounds = {
            "b": 64,
            "s": cfg.context_length,
            "m": cfg.context_length,
            "w": -(-cfg.context_length // page),
        }
        self.spec = self.econfig.spec
        self.tp = self.econfig.tp
        self.draft = None
        if self.spec is not None:
            # Paired compilation: target and draft share one compile-cache
            # entry, so rate/acceptance sweeps compile the pair once.
            pair = RelaxSpecPair(
                cfg, self.spec.draft, device,
                sym_var_upper_bounds=bounds,
                enable_library_dispatch=enable_library_dispatch,
                enable_cuda_graph=enable_cuda_graph,
                page_size=page,
                tp=self.tp,
                interconnect=self.econfig.interconnect,
            )
            self.llm = pair.target
            self.draft = pair.draft
        else:
            self.llm = RelaxLLM(
                cfg, device,
                sym_var_upper_bounds=bounds,
                enable_library_dispatch=enable_library_dispatch,
                enable_cuda_graph=enable_cuda_graph,
                page_size=page,
                tp=self.tp,
                interconnect=self.econfig.interconnect,
            )
        self.vm: VirtualMachine = self.llm.vm
        self.params = self.llm.params
        self.num_blocks = self._pool_blocks()
        # The device-side pool, one (p, page, h_kv, d) pair per layer.
        # Abstract mode: shape-only arrays, allocated once per engine.
        # Under tensor parallelism every shard owns its own pool slice:
        # same block-id space, ``h_kv / tp`` heads per page.
        self.pools: List[NDArray] = []
        kv_local = cfg.num_kv_heads // self.tp
        for _ in range(cfg.num_layers):
            shape = (self.num_blocks, page, kv_local, cfg.head_dim)
            self.pools.append(NDArray.abstract(shape, cfg.dtype))
            self.pools.append(NDArray.abstract(shape, cfg.dtype))
        # Draft pools mirror the target's block-id space: both models are
        # indexed through the *same* block tables (one allocator), so the
        # draft pool is sized to the same num_blocks.
        self.draft_pools: List[NDArray] = []
        if self.draft is not None:
            dcfg = self.draft.cfg
            dshape = (self.num_blocks, page, dcfg.num_kv_heads, dcfg.head_dim)
            for _ in range(dcfg.num_layers):
                self.draft_pools.append(NDArray.abstract(dshape, dcfg.dtype))
                self.draft_pools.append(NDArray.abstract(dshape, dcfg.dtype))
        # Optional heterogeneous model families, one compiled VM each.
        # All families share one block-id space (the PagedKVCache
        # allocator): per-family pool arrays are sized to the same
        # num_blocks, so any allocated block id indexes any family's pool.
        self.whisper = None
        self.whisper_pools: List[NDArray] = []
        if whisper_config is not None:
            wbounds = {
                "b": 64,
                "f": whisper_config.max_frames,
                "m": whisper_config.max_target,
                "t": whisper_config.enc_positions,
                "w": -(-whisper_config.max_target // page),
                "u": -(-whisper_config.enc_positions // page),
            }
            self.whisper = RelaxWhisper(
                whisper_config, device,
                sym_var_upper_bounds=wbounds,
                page_size=page,
                enable_library_dispatch=enable_library_dispatch,
            )
            wshape = (self.num_blocks, page, whisper_config.num_heads,
                      whisper_config.head_dim)
            for _ in range(whisper_config.decoder_layers):
                self.whisper_pools.append(
                    NDArray.abstract(wshape, whisper_config.dtype))
                self.whisper_pools.append(
                    NDArray.abstract(wshape, whisper_config.dtype))
        self.denoise = None
        if denoise_config is not None:
            self.denoise = RelaxDenoise(denoise_config, device)
        self._vms: List[VirtualMachine] = [self.vm]
        self._vm_names: List[str] = ["llm"]
        if self.draft is not None:
            self._vms.append(self.draft.vm)
            self._vm_names.append("draft")
        if self.whisper is not None:
            self._vms.append(self.whisper.vm)
            self._vm_names.append("whisper")
        if self.denoise is not None:
            self._vms.append(self.denoise.vm)
            self._vm_names.append("denoise")
        #: The in-flight run, if any (see the steppable core below).
        self._run: Optional[_RunState] = None

    def _block_bytes(self) -> int:
        from .. import dtypes

        cfg = self.cfg
        per_layer = (
            self.econfig.page_size * cfg.num_kv_heads * cfg.head_dim
            * dtypes.itemsize(cfg.dtype)
        )
        return 2 * cfg.num_layers * per_layer  # K and V

    def _pool_blocks(self) -> int:
        if self.econfig.num_blocks is not None:
            return self.econfig.num_blocks
        weights = self.llm.exported.param_bytes()
        if self.draft is not None:
            # The draft model's weights live in the same VRAM budget.
            weights += self.draft.exported.param_bytes()
        budget = (self.device.vram_bytes - weights)
        budget = int(budget * self.econfig.kv_memory_fraction)
        # Per-device budget against per-device block bytes: sharded pools
        # hold h_kv/tp heads per page (and `weights` is already the
        # per-rank slice), so TP frees VRAM for more KV blocks.
        blocks = budget // (self._block_bytes() // self.tp)
        blocks = min(blocks, self.econfig.max_kv_blocks)
        if blocks < 2:
            raise CacheError(
                f"device {self.device.name} has no VRAM left for a KV pool "
                f"({blocks} blocks)"
            )
        return blocks

    # -- steppable core ---------------------------------------------------------
    #
    # One run is the submit() -> step()* -> report() protocol; ``run()``
    # is the thin loop over it.  The engine never owns an outer clock
    # loop any more: each ``step()`` plans and executes exactly one
    # scheduler iteration and advances this engine's analytical clock,
    # which is what lets a cluster coordinator interleave N engines on
    # independent clocks (always stepping the lagging one first).

    def submit(self, requests: Sequence[Request]) -> None:
        """Feed requests into the active run, starting one if needed.

        May be called repeatedly (the cluster router feeds arrivals as
        the shared clock reaches them); a request only becomes eligible
        for admission once the engine clock reaches its ``arrival_s``.
        """
        for r in requests:
            if r.kind == "whisper" and self.whisper is None:
                raise ValueError(
                    "workload contains whisper requests but the engine was "
                    "built without whisper_config"
                )
            if r.kind == "denoise" and self.denoise is None:
                raise ValueError(
                    "workload contains denoise requests but the engine was "
                    "built without denoise_config"
                )
        if self._run is None:
            self._run = self._begin_run()
        run = self._run
        spec = self.spec
        spec_k = spec.num_spec_tokens if spec is not None else 0
        for r in requests:
            if r.req_id in run.states:
                raise ValueError(
                    f"request {r.req_id} was already submitted to this run"
                )
            run.states[r.req_id] = RequestState(
                request=r,
                metrics=RequestMetrics(
                    req_id=r.req_id,
                    arrival_s=r.arrival_s,
                    prompt_len=r.prompt_len,
                    output_len=r.output_len,
                    kind=r.kind,
                ),
                program=program_for(
                    r, denoise_budget_per_step=run.denoise_budget,
                    llm_spec_tokens=spec_k,
                ),
            )
            run.requests.append(r)
        run.pending.extend(requests)
        run.pending.sort(key=lambda r: (r.arrival_s, r.req_id))

    def _begin_run(self) -> _RunState:
        econf = self.econfig
        # A denoise step computes over every latent token — charge the
        # shared token budget accordingly.
        denoise_budget = (
            self.denoise.cfg.latent_tokens if self.denoise is not None else 1
        )
        kv = PagedKVCache(self.num_blocks, econf.page_size)
        cache = PrefixCache(kv) if econf.enable_prefix_caching else None
        sched = ContinuousBatchingScheduler(econf.scheduler, kv)
        # Token identity comes from the oracle (abstract mode: the VM
        # meters cost but produces no logits).  The vanilla engine uses
        # seed 0, so a speculative run pinning ``SpecConfig.seed=0``
        # emits the exact same token stream.
        spec = self.spec
        oracle = TokenOracle(
            seed=spec.seed if spec is not None else 0,
            vocab_size=self.cfg.vocab_size,
            draft_quality=spec.draft_quality if spec is not None else 0.0,
        )
        sched.spec_k_cap = None
        tel: Optional[EngineTelemetry] = None
        if econf.telemetry is not None:
            tel = EngineTelemetry(
                econf.telemetry,
                slo_ttft_s=econf.slo_ttft_s,
                slo_tpot_s=econf.slo_tpot_s,
                vm_names=self._vm_names,
                max_num_seqs=econf.scheduler.max_num_seqs,
                max_num_batched_tokens=econf.scheduler.max_num_batched_tokens,
            )
            tel.attach(self._vms)
        return _RunState(
            kv=kv, cache=cache, sched=sched, oracle=oracle, tel=tel,
            denoise_budget=denoise_budget,
            token_bytes=self._block_bytes() // econf.page_size,
            ctl_cap=spec.num_spec_tokens if spec is not None else 0,
            stats_start=[vm.stats.copy() for vm in self._vms],
        )

    @property
    def has_work(self) -> bool:
        """True while the active run still has pending or unfinished
        requests (i.e. :meth:`step` can make progress)."""
        run = self._run
        return run is not None and (
            bool(run.pending) or run.sched.has_unfinished()
        )

    @property
    def clock(self) -> float:
        """The engine's analytical clock (0.0 outside a run)."""
        return self._run.clock if self._run is not None else 0.0

    @property
    def active_run(self) -> Optional[_RunState]:
        """The in-flight run state, for coordinators (read-mostly:
        routers inspect ``sched``/``kv``/``cache`` for load and prefix
        feedback).  ``None`` between runs."""
        return self._run

    def step(self) -> Optional[Dict[str, Any]]:
        """Advance the run by one scheduler iteration.

        Returns the iteration record when work was executed, or ``None``
        when the engine only advanced its clock to the next pending
        arrival (call again) or has fully drained (``has_work`` is then
        False).  Raises :class:`CacheError` when the scheduler is
        stalled with no way to make progress.
        """
        if self._run is None:
            raise RuntimeError("no active run: call submit() first")
        try:
            return self._step(self._run)
        except BaseException:
            # Engine VMs persist across runs: never leave a telemetry
            # tracer attached, even when the step raises.
            self._teardown_telemetry()
            raise

    def drain(self) -> None:
        """Step until every submitted request has finished."""
        while self.has_work:
            self.step()

    def _step(self, run: _RunState) -> Optional[Dict[str, Any]]:
        econf = self.econfig
        sched = run.sched
        # Admit arrivals up to the current simulated time.
        while run.pending and run.pending[0].arrival_s <= run.clock:
            sched.add_request(run.states[run.pending[0].req_id])
            run.pending.pop(0)

        it = sched.schedule()
        if it.empty:
            if run.pending:
                run.clock = max(run.clock, run.pending[0].arrival_s)
                return None
            if sched.has_unfinished():
                raise CacheError(
                    "scheduler stalled: KV pool too small for the "
                    "remaining requests"
                )
            return None  # drained

        t_begin = run.clock
        before = [vm.stats.copy() for vm in self._vms]

        # Swap traffic (blocks to/from host) on the analytic host link.
        swap_s = 0.0
        for _, tokens, mode in it.preempted:
            if mode == "swap" and tokens:
                swap_s += (tokens * run.token_bytes
                           / econf.host_link_bandwidth)
        for _, tokens in it.swapped_in:
            if tokens:
                swap_s += (tokens * run.token_bytes
                           / econf.host_link_bandwidth)

        self._execute(it)

        delta = ExecutionStats.merge_serial([
            vm.stats.delta(b) for vm, b in zip(self._vms, before)
        ])
        run.clock = t_begin + delta.time_s + swap_s
        run.swap_total_s += swap_s

        self._advance(it, sched, run.clock, run.kv, run.oracle)
        spec = self.spec
        if spec is not None and spec.adaptive and it.spec_decode:
            run.ctl_proposed += sum(k for _, _, k in it.spec_decode)
            run.ctl_accepted += sum(it.spec_accepted.values())
            if run.ctl_proposed >= spec.adapt_window:
                rate = run.ctl_accepted / run.ctl_proposed
                if rate < spec.adapt_low:
                    run.ctl_cap = max(1, run.ctl_cap - 1)
                elif rate > spec.adapt_high:
                    run.ctl_cap = min(spec.num_spec_tokens, run.ctl_cap + 1)
                sched.spec_k_cap = run.ctl_cap
                run.ctl_proposed = run.ctl_accepted = 0
        self._record(it, run.iterations, run.trace_events, t_begin,
                     run.clock, swap_s, delta, run.kv, sched)
        if run.tel is not None:
            run.tel.on_iteration(
                it=it, sched=sched, kv=run.kv, cache=run.cache,
                index=len(run.iterations) - 1,
                t_begin=t_begin, t_end=run.clock, swap_s=swap_s,
                delta=delta, before=before, vms=self._vms,
            )
        run.queue_samples.append(sched.queue_depth)
        # Required utilization: cache-only (reclaimable) blocks are
        # spare VRAM, not load; identical to raw when caching is off.
        run.util_samples.append(run.kv.required_utilization())
        return run.iterations[-1]

    def _teardown_telemetry(self) -> None:
        run = self._run
        if run is not None and run.tel is not None:
            run.tel.detach(self._vms)

    def report(self) -> "ServeReport":
        """Finalize the run: audits, aggregation, and the ServeReport.

        Ends the run — the engine is ready for a fresh ``submit()`` (or
        ``run()``) afterwards; the compiled VMs persist.
        """
        if self._run is None:
            raise RuntimeError("no active run to report")
        if self.has_work:
            raise RuntimeError(
                "report() before the run drained: "
                "call drain() (or step() until has_work is False) first"
            )
        run = self._run
        econf = self.econfig
        spec = self.spec
        self._teardown_telemetry()
        kv = run.kv
        cache = run.cache
        tel = run.tel
        states = run.states
        clock = run.clock

        kv.check_no_leaks()
        if self.tp > 1:
            # Per-shard pool audit: SPMD ranks must balance identically.
            self.vm.check_no_leaks()
        refcount_audit = kv.refcount_audit()
        if tel is not None:
            tel.finalize(clock=clock, kv=kv)
        total = ExecutionStats.merge_serial([
            vm.stats.delta(s) for vm, s in zip(self._vms, run.stats_start)
        ])
        summary = summarize(
            [s.metrics for s in states.values()],
            slo_ttft_s=econf.slo_ttft_s,
            slo_tpot_s=econf.slo_tpot_s,
            queue_depth_samples=run.queue_samples,
            kv_utilization_samples=run.util_samples,
        )
        summary["vm"] = total.summary()
        summary["swap_time_s"] = run.swap_total_s
        summary["kv_pool"] = {
            "num_blocks": self.num_blocks,
            "page_size": econf.page_size,
            "peak_used_blocks": kv.peak_used_blocks,
            "peak_required_blocks": kv.peak_required_blocks,
            "peak_utilization": kv.peak_required_blocks / self.num_blocks,
            "peak_raw_utilization": kv.peak_used_blocks / self.num_blocks,
            "cow_copies": kv.cow_copies,
            "leaked_blocks": 0,  # check_no_leaks() raised otherwise
        }
        if cache is not None:
            summary["prefix_cache"] = cache.stats.to_dict()
        if spec is not None:
            proposed = sum(s.metrics.spec_proposed for s in states.values())
            accepted = sum(s.metrics.spec_accepted for s in states.values())
            checked = sum(s.metrics.spec_checked for s in states.values())
            summary["spec_decode"] = {
                "num_spec_tokens": spec.num_spec_tokens,
                "draft_quality": spec.draft_quality,
                "draft_model": self.draft.cfg.name,
                "adaptive": spec.adaptive,
                "proposed": proposed,
                "accepted": accepted,
                "checked": checked,
                # Drafting efficiency: fraction of proposed drafts that
                # committed (greedy matching truncates at the first miss,
                # so this sits below the per-position quality).
                "acceptance_rate": (
                    accepted / proposed if proposed else None
                ),
                # Per-position acceptance: each *checked* position is an
                # independent Bernoulli(draft_quality) draw, so this
                # converges to the configured draft quality.
                "per_position_acceptance": (
                    accepted / checked if checked else None
                ),
            }
        if tel is not None:
            # Telemetry-gated keys: the telemetry-off summary byte
            # format is pinned by the baseline-hash tests, and the
            # telemetry-on single-device format by the strip-equality
            # test — so comm_fraction additionally needs a mesh.
            summary["kv_pool"]["refcount_audit"] = refcount_audit
            summary["telemetry"] = tel.summary_brief()
            if self.tp > 1:
                summary["comm_fraction"] = (
                    total.comm_time_s / total.time_s if total.time_s else 0.0
                )
        report = ServeReport(
            device=self.device.name,
            model=self.cfg.name,
            summary=summary,
            requests=[states[r.req_id].metrics for r in run.requests],
            iterations=run.iterations,
            trace_events=run.trace_events,
            stats=total,
            telemetry=tel,
            refcount_audit=refcount_audit,
        )
        self._run = None
        return report

    # -- one run ----------------------------------------------------------------

    def run(self, requests: Sequence[Request]) -> "ServeReport":
        """Serve ``requests`` to completion: the submit/drain/report
        protocol as one call.  Always starts a fresh run."""
        self._run = None
        try:
            self.submit(requests)
            self.drain()
        except BaseException:
            self._teardown_telemetry()
            self._run = None
            raise
        return self.report()

    # -- internals --------------------------------------------------------------

    def _execute(self, it: Iteration) -> None:
        """Issue this iteration's VM calls (abstract mode: cost only)."""
        if it.decode:
            b = len(it.decode)
            # Ragged batch: pad every block table to the widest sequence.
            w = max(
                max(it.decode_lengths) // self.econfig.page_size + 1, 1
            )
            self.vm.run(
                "decode_paged",
                NDArray.abstract((b, 1), "i64"),
                NDArray.abstract((b, w), "i64"),
                NDArray.abstract((b,), "i64"),
                *self.pools,
                *self.params,
            )
        page = self.econfig.page_size
        if it.spec_decode:
            # Draft proposal rounds: round r decodes one draft token for
            # every sequence still proposing (k > r); the draft reads the
            # target's block tables (shared block-id space) with context
            # grown by the r tokens already proposed this step.
            max_k = max(k for _, _, k in it.spec_decode)
            for r in range(max_k):
                group = [ctx for _, ctx, k in it.spec_decode if k > r]
                if not group:
                    break
                b = len(group)
                w = max(max(c + r for c in group) // page + 1, 1)
                self.draft.vm.run(
                    "decode_paged",
                    NDArray.abstract((b, 1), "i64"),
                    NDArray.abstract((b, w), "i64"),
                    NDArray.abstract((b,), "i64"),
                    *self.draft_pools,
                    *self.draft.params,
                )
            # One ragged multi-token verify on the target: row 0 is the
            # last committed token, rows 1..k the draft proposals; the
            # target scores all k + 1 positions in a single weights pass —
            # which is the whole speculative bet (decode is weights-bound,
            # so verifying k extra rows costs barely more than one token).
            b = len(it.spec_decode)
            s = max_k + 1
            w = max(max(ctx for _, ctx, _ in it.spec_decode) // page + 1, 1)
            self.vm.run(
                "verify_paged",
                NDArray.abstract((b, s), "i64"),
                NDArray.abstract((b, w), "i64"),
                NDArray.abstract((b,), "i64"),
                NDArray.abstract((b,), "i64"),
                *self.pools,
                *self.params,
            )
        for _, past, chunk in it.prefill:
            w = max(-(-(past + chunk) // page), 1)
            self.vm.run(
                "prefill_paged",
                NDArray.abstract((1, chunk), "i64"),
                NDArray.abstract((1, w), "i64"),
                NDArray.abstract((past,), "i64"),
                *self.pools,
                *self.params,
            )
        # Heterogeneous per-request steps.  Whisper decodes run per
        # sequence (each carries its own cross-stream block table);
        # KV-free denoise steps batch into one call.
        denoise_batch = 0
        for state, ctx in it.steps:
            prog = state.program
            if prog.kind == "denoise":
                denoise_batch += 1
                continue
            t = prog.enc_positions
            w = max(ctx // page + 1, 1)
            u = max(-(-t // page), 1)
            self.whisper.vm.run(
                "decode_paged",
                NDArray.abstract((1, 1), "i64"),
                NDArray.abstract((1, w), "i64"),
                NDArray.abstract((ctx,), "i64"),
                NDArray.abstract((1, u), "i64"),
                NDArray.abstract((t,), "i64"),
                *self.whisper_pools,
                *self.whisper.params,
            )
        if denoise_batch:
            dcfg = self.denoise.cfg
            self.denoise.vm.run(
                "denoise_step",
                NDArray.abstract(
                    (denoise_batch, dcfg.latent_tokens, dcfg.latent_dim),
                    dcfg.dtype,
                ),
                *self.denoise.params,
            )
        # Heterogeneous chunked-phase work (whisper encode / cross-KV
        # projection).  The encode cost model runs the chunk's frame
        # slice through the encoder entry.
        for state, phase_name, past, chunk in it.chunks:
            if phase_name == "encode":
                self.whisper.vm.run(
                    "encode_chunk",
                    NDArray.abstract(
                        (1, chunk, self.whisper.cfg.n_mel),
                        self.whisper.cfg.dtype,
                    ),
                    *self.whisper.params,
                )
            elif phase_name == "cross_project":
                self.whisper.vm.run(
                    "cross_project",
                    NDArray.abstract(
                        (1, chunk, self.whisper.cfg.d_model),
                        self.whisper.cfg.dtype,
                    ),
                    *self.whisper.params,
                )
            else:
                raise ValueError(
                    f"no engine entry for chunked phase {phase_name!r}"
                )

    def _advance(self, it: Iteration, sched: ContinuousBatchingScheduler,
                 clock: float, kv: PagedKVCache,
                 oracle: TokenOracle) -> None:
        """Commit token production and completions at ``clock``.

        Token *identity* always comes from the oracle, indexed by output
        position — so any execution strategy (vanilla, speculative,
        recompute-after-preemption) reconstructs the identical stream;
        only the timestamps differ.
        """
        for state in it.decode:
            state.metrics.output_tokens.append(
                oracle.target_token(state.seq_id, state.generated))
            state.generated += 1
            state.metrics.token_times.append(clock)
            if state.done:
                state.metrics.finish_s = clock
                sched.finish(state)
        for state, ctx, k in it.spec_decode:
            # Greedy-match acceptance: the emitted stream is the longest
            # prefix of draft proposals the target agrees with, plus the
            # target's own "bonus" token — so between 1 and k + 1 tokens
            # commit, all byte-identical to what vanilla decode would
            # have emitted at these positions.
            pos = state.generated
            n = 0
            while n < k and oracle.draft_matches(state.seq_id, pos + n):
                n += 1
            state.metrics.spec_proposed += k
            state.metrics.spec_accepted += n
            state.metrics.spec_checked += n if n == k else n + 1
            it.spec_accepted[state.seq_id] = n
            # Exact rollback: the scheduler appended k + 1 KV tokens
            # optimistically; the k - n rejected tail tokens come back
            # out, returning fully-vacated tail pages to the pool in
            # LIFO order.
            if k - n:
                kv.rollback(state.seq_id, k - n)
            for i in range(n + 1):
                state.metrics.output_tokens.append(
                    oracle.target_token(state.seq_id, pos + i))
                state.generated += 1
                state.metrics.token_times.append(clock)
            if state.done:
                state.metrics.finish_s = clock
                sched.finish(state)
        for state, _ in it.steps:
            state.generated += 1
            state.metrics.token_times.append(clock)
            if state.done:
                state.metrics.finish_s = clock
                sched.finish(state)
        for state, _, _ in it.prefill:
            if (
                state.phase is Phase.DECODE
                and state.prefilled == state.prefill_target
                and state.generated == 0
            ):
                # Final prefill chunk yields the first output token.
                state.metrics.output_tokens.append(
                    oracle.target_token(state.seq_id, 0))
                state.generated = 1
                state.metrics.token_times.append(clock)
                if state.done:
                    state.metrics.finish_s = clock
                    sched.finish(state)

    def _record(self, it: Iteration, iterations, trace_events,
                t_begin: float, t_end: float, swap_s: float,
                delta: ExecutionStats, kv: PagedKVCache,
                sched: ContinuousBatchingScheduler) -> None:
        idx = len(iterations)
        us = 1e6
        record = {
            "index": idx,
            "start_s": t_begin,
            "dur_s": t_end - t_begin,
            "decode_batch": len(it.decode),
            "prefill_tokens": sum(n for _, _, n in it.prefill),
            "num_batched_tokens": it.num_batched_tokens,
            "preemptions": len(it.preempted),
            "swap_s": swap_s,
            "kernel_launches": delta.kernel_launches,
            "free_blocks": kv.num_free_blocks,
            "reclaimable_blocks": kv.num_reclaimable_blocks,
            "cache_hits": len(it.cache_hits),
            "cached_tokens": sum(n for _, n in it.cache_hits),
            "queue_depth": sched.queue_depth,
        }
        # Heterogeneous keys only appear when such work was scheduled, so
        # single-type (LLM-only) runs keep their exact legacy records.
        if it.steps or it.chunks:
            record["steps"] = len(it.steps)
            record["chunk_tokens"] = sum(n for _, _, _, n in it.chunks)
        # Speculative keys likewise: vanilla runs must stay byte-identical.
        if it.spec_decode:
            record["spec_batch"] = len(it.spec_decode)
            record["spec_proposed"] = sum(k for _, _, k in it.spec_decode)
            record["spec_accepted"] = sum(it.spec_accepted.values())
        iterations.append(record)
        # Engine track (pid 0 / tid 0): one slice per iteration plus a
        # KV-utilisation counter.
        trace_events.append({
            "name": f"iteration[{idx}]",
            "ph": "X", "pid": 0, "tid": 0,
            "ts": t_begin * us, "dur": (t_end - t_begin) * us,
            "args": {
                "decode_batch": len(it.decode),
                "prefill_tokens": sum(n for _, _, n in it.prefill),
                "preemptions": len(it.preempted),
            },
        })
        trace_events.append({
            "name": "kv_used_blocks",
            "ph": "C", "pid": 0, "tid": 0,
            "ts": t_end * us,
            "args": {"used": kv.allocator.num_used},
        })
        # Request tracks (pid 1, one tid per request): a slice per
        # iteration the request participated in, instants for preemption.
        for state in it.decode:
            trace_events.append({
                "name": "decode",
                "ph": "X", "pid": 1, "tid": state.seq_id,
                "ts": t_begin * us, "dur": (t_end - t_begin) * us,
                "args": {"token": state.generated + 1},
            })
        for state, ctx, k in it.spec_decode:
            trace_events.append({
                "name": "spec_decode",
                "ph": "X", "pid": 1, "tid": state.seq_id,
                "ts": t_begin * us, "dur": (t_end - t_begin) * us,
                "args": {
                    "ctx": ctx,
                    "proposed": k,
                    "accepted": it.spec_accepted.get(state.seq_id, 0),
                },
            })
        for state, past, chunk in it.prefill:
            trace_events.append({
                "name": "prefill",
                "ph": "X", "pid": 1, "tid": state.seq_id,
                "ts": t_begin * us, "dur": (t_end - t_begin) * us,
                "args": {"past": past, "chunk": chunk},
            })
        for state, ctx in it.steps:
            trace_events.append({
                "name": state.program.stepped.name,
                "ph": "X", "pid": 1, "tid": state.seq_id,
                "ts": t_begin * us, "dur": (t_end - t_begin) * us,
                "args": {"step": state.generated + 1, "ctx": ctx},
            })
        for state, phase_name, past, chunk in it.chunks:
            trace_events.append({
                "name": phase_name,
                "ph": "X", "pid": 1, "tid": state.seq_id,
                "ts": t_begin * us, "dur": (t_end - t_begin) * us,
                "args": {"past": past, "chunk": chunk},
            })
        for state, tokens, mode in it.preempted:
            trace_events.append({
                "name": f"preempt[{mode}]",
                "ph": "i", "pid": 1, "tid": state.seq_id,
                "ts": t_begin * us, "s": "t",
                "args": {"tokens": tokens},
            })
        for state, cached in it.cache_hits:
            trace_events.append({
                "name": "prefix_cache_hit",
                "ph": "i", "pid": 1, "tid": state.seq_id,
                "ts": t_begin * us, "s": "t",
                "args": {"cached_tokens": cached},
            })


@dataclass
class ServeReport:
    """Everything one serving run produced, JSON- and Perfetto-ready."""

    device: str
    model: str
    summary: Dict[str, Any]
    requests: List[RequestMetrics]
    iterations: List[Dict[str, Any]]
    trace_events: List[Dict[str, Any]]
    stats: ExecutionStats
    #: :class:`~repro.serve.telemetry.EngineTelemetry` when the run was
    #: telemetered, else ``None``.  In-memory field; serialized (under a
    #: ``"telemetry"`` key / extra trace tracks) only when present.
    telemetry: Optional[EngineTelemetry] = None
    #: Allocator accounting snapshot taken at teardown, *always*
    #: populated (the refcount audit is cheap); folded into the summary
    #: only behind the telemetry gate.
    refcount_audit: Optional[Dict[str, Any]] = None

    def chrome_trace(self) -> Dict[str, Any]:
        """Perfetto-compatible trace: engine track + one track/request.

        A telemetered run extends the same file with lifecycle spans on
        the request tracks, scheduler/pool counter tracks, and — with
        kernel capture — the VMs' per-op events on the shared clock.
        """
        meta: List[Dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": f"repro-serve engine ({self.device})"}},
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "requests"}},
        ]
        for r in self.requests:
            meta.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": r.req_id,
                "args": {"name": f"request {r.req_id}"},
            })
        events = meta + self.trace_events
        if self.telemetry is not None:
            events = events + self.telemetry.trace_extension()
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }

    def export_chrome_trace(self, path: str) -> Dict[str, Any]:
        from ..obs.report import validate_chrome_trace

        trace = validate_chrome_trace(self.chrome_trace())
        with open(path, "w") as f:
            json.dump(trace, f)
        return trace

    def to_dict(self) -> Dict[str, Any]:
        out_requests = []
        for r in self.requests:
            d = {
                "req_id": r.req_id,
                "arrival_s": r.arrival_s,
                "prompt_len": r.prompt_len,
                "output_len": r.output_len,
                "ttft_s": r.ttft,
                "tpot_s": r.tpot,
                "finish_s": r.finish_s,
                "preemptions": r.preemptions,
                "cached_prompt_tokens": r.cached_prompt_tokens,
            }
            if r.kind != "llm":
                d["kind"] = r.kind
            if r.spec_proposed:
                d["spec_proposed"] = r.spec_proposed
                d["spec_accepted"] = r.spec_accepted
            out_requests.append(d)
        out = {
            "device": self.device,
            "model": self.model,
            "summary": self.summary,
            "requests": out_requests,
            "iterations": self.iterations,
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.to_dict()
        return out

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)


def serve_workload(
    cfg: LlamaConfig,
    device: Device,
    workload: "WorkloadConfig | Sequence[Request]",
    engine_config: Optional[EngineConfig] = None,
    *,
    whisper_config: Optional[Any] = None,
    denoise_config: Optional[Any] = None,
) -> ServeReport:
    """Run a workload through a fresh engine.

    ``workload`` is either a :class:`WorkloadConfig` (the seeded trace is
    generated here) or an already-generated request sequence (e.g. one
    replayed from :func:`~repro.serve.workload.workload_from_json`).
    Heterogeneous workloads need the matching model configs.
    """
    engine = ServingEngine(
        cfg, device, engine_config,
        whisper_config=whisper_config,
        denoise_config=denoise_config,
    )
    if isinstance(workload, WorkloadConfig):
        requests = generate(workload)
    else:
        requests = list(workload)
    return engine.run(requests)
