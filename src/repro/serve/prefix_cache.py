"""Radix-tree prefix cache over the paged KV pool.

Prompts sharing a prefix (system prompts, few-shot templates) can share
the KV blocks holding that prefix.  The cache indexes *full* pages by
the page-size chunk of token ids they hold, organised as a radix tree:
a path from the root spells out a token-id prefix one page at a time,
and each node maps its chunk to the pool block storing that page's KV.

Ownership model (see :mod:`repro.serve.kv_cache`): the cache holds
exactly **one** allocator reference per node.  Sequences that match a
prefix take additional shared references via
:meth:`~repro.serve.kv_cache.PagedKVCache.attach_shared`; publishing a
finished prefill (:meth:`PrefixCache.insert`) shares the sequence's
prompt blocks into new nodes.  A node whose block is back to refcount 1
is referenced by the cache alone and is *evictable*: under pool
pressure, :meth:`reclaim` frees such blocks LRU-first.

Eviction is leaf-first, which is always sufficient: a sequence holding
a node's block necessarily holds every ancestor's block too (prefixes
attach contiguously from the root), so refcount-1 nodes form
downward-closed subtrees — an evictable interior node only has
evictable descendants, and peeling leaves reaches it without ever
stranding a referenced child.  LRU order is deterministic: nodes carry
a logical touch tick, ties break on block id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .kv_cache import CacheError, PagedKVCache


@dataclass
class PrefixCacheStats:
    """Counters the engine surfaces in its summary."""

    #: Admission-time lookups (one per admission attempt that completed).
    lookups: int = 0
    #: Lookups that matched at least one full page.
    hits: int = 0
    #: Prompt tokens requested across lookups.
    requested_tokens: int = 0
    #: Prompt tokens served from cached blocks across lookups.
    matched_tokens: int = 0
    #: Trie nodes created (blocks published).
    inserts: int = 0
    #: Cached blocks reclaimed under pool pressure.
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def cached_token_fraction(self) -> float:
        if not self.requested_tokens:
            return 0.0
        return self.matched_tokens / self.requested_tokens

    def to_dict(self) -> Dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "requested_tokens": self.requested_tokens,
            "matched_tokens": self.matched_tokens,
            "cached_token_fraction": self.cached_token_fraction,
            "inserts": self.inserts,
            "evictions": self.evictions,
        }


@dataclass
class _Node:
    key: Tuple[int, ...]
    block: int
    parent: Optional["_Node"]
    children: Dict[Tuple[int, ...], "_Node"] = field(default_factory=dict)
    last_use: int = 0


class PrefixCache:
    """Token-prefix → shared-block index attached to one
    :class:`~repro.serve.kv_cache.PagedKVCache` (constructing the cache
    attaches it; ``kv.prefix_cache`` becomes ``self``)."""

    def __init__(self, kv: PagedKVCache):
        self.kv = kv
        self.allocator = kv.allocator
        self.page_size = kv.page_size
        self._root = _Node(key=(), block=-1, parent=None)
        self._tick = 0
        self.stats = PrefixCacheStats()
        kv.prefix_cache = self

    # -- structure queries ------------------------------------------------------

    def _nodes(self) -> List[_Node]:
        out: List[_Node] = []
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children.values())
        return out

    @property
    def num_nodes(self) -> int:
        return len(self._nodes())

    def cached_blocks(self) -> List[int]:
        return [n.block for n in self._nodes()]

    def evictable_count(self, exclude: Sequence[int] = ()) -> int:
        """Nodes whose block only the cache references.  Downward closure
        (module docstring) makes every one of them eventually freeable by
        leaf-first eviction, so this is the reclaimable-block count."""
        skip = set(exclude)
        return sum(
            1 for n in self._nodes()
            if n.block not in skip and self.allocator.refcount(n.block) == 1
        )

    # -- lookup / attach --------------------------------------------------------

    def _walk(self, tokens: Sequence[int]) -> List[_Node]:
        """Nodes along the longest cached full-page prefix of ``tokens``."""
        page = self.page_size
        path: List[_Node] = []
        cur = self._root
        for i in range(len(tokens) // page):
            chunk = tuple(tokens[i * page: (i + 1) * page])
            node = cur.children.get(chunk)
            if node is None:
                break
            path.append(node)
            cur = node
        return path

    def match(self, tokens: Sequence[int],
              max_tokens: Optional[int] = None) -> Tuple[List[int], int]:
        """Longest cached prefix of ``tokens``, as ``(blocks, tokens)``.

        Read-only (no stats, no recency): schedulers probe with this,
        then commit via :meth:`attach`.  ``max_tokens`` caps the match —
        admission caps at ``prompt_len - 1`` so even a fully-cached
        prompt leaves one token to prefill (logits must come from
        somewhere); the capped match may use only part of its last block.
        """
        path = self._walk(tokens)
        matched = len(path) * self.page_size
        if max_tokens is not None and matched > max_tokens:
            matched = max_tokens
        blocks = [n.block for n in path[: self.kv.blocks_for_tokens(matched)]]
        return blocks, matched

    def attach(self, seq_id: int, tokens: Sequence[int],
               max_tokens: Optional[int] = None, record: bool = True) -> int:
        """Commit a match: the sequence takes shared ownership of the
        matched blocks and the nodes' LRU recency is bumped.  Returns the
        matched token count.  ``record=False`` skips hit-rate stats
        (swap-in re-attachment is not an admission lookup)."""
        blocks, matched = self.match(tokens, max_tokens)
        if record:
            self.stats.lookups += 1
            self.stats.requested_tokens += len(tokens)
            self.stats.matched_tokens += matched
            if matched:
                self.stats.hits += 1
        if matched:
            self._tick += 1
            path = self._walk(tokens)
            for node in path[: len(blocks)]:
                node.last_use = self._tick
            self.kv.attach_shared(seq_id, blocks, matched)
        return matched

    def record_miss(self, requested_tokens: int) -> None:
        """Count an admission lookup that matched nothing."""
        self.stats.lookups += 1
        self.stats.requested_tokens += requested_tokens

    # -- publish ----------------------------------------------------------------

    def insert(self, tokens: Sequence[int], blocks: Sequence[int]) -> int:
        """Publish a prefilled prompt's full pages; returns nodes created.

        ``blocks`` is the owning sequence's block list; only the leading
        ``len(tokens) // page_size`` full pages are indexed.  Chunks
        already cached are deduplicated — the existing node (and block)
        wins, the sequence keeps its own copy privately.
        """
        page = self.page_size
        self._tick += 1
        cur = self._root
        created = 0
        for i, block in zip(range(len(tokens) // page), blocks):
            chunk = tuple(tokens[i * page: (i + 1) * page])
            node = cur.children.get(chunk)
            if node is None:
                self.allocator.share(block)
                node = _Node(key=chunk, block=block, parent=cur)
                cur.children[chunk] = node
                created += 1
            node.last_use = self._tick
            cur = node
        if created:
            self.stats.inserts += created
            self.kv._note_usage()
        return created

    # -- eviction ---------------------------------------------------------------

    def reclaim(self, need: int) -> int:
        """Free up to ``need`` cached blocks, least-recently-used leaves
        first; returns how many actually went back to the pool."""
        freed = 0
        while freed < need:
            victim: Optional[_Node] = None
            for node in self._nodes():
                if node.children:
                    continue
                if self.allocator.refcount(node.block) != 1:
                    continue
                if victim is None or (
                    (node.last_use, node.block)
                    < (victim.last_use, victim.block)
                ):
                    victim = node
            if victim is None:
                break
            self._remove(victim)
            self.allocator.free(victim.block)
            self.stats.evictions += 1
            freed += 1
        return freed

    def _remove(self, node: _Node) -> None:
        if node.children:
            raise CacheError("evicting an interior prefix-cache node")
        assert node.parent is not None
        del node.parent.children[node.key]

    def clear(self) -> int:
        """Drop every cached block (end-of-run teardown); returns count.
        Raises if any block is still shared with a live sequence."""
        nodes = self._nodes()
        for node in nodes:
            if self.allocator.refcount(node.block) != 1:
                raise CacheError(
                    f"clearing prefix cache while block {node.block} is "
                    f"still shared"
                )
        for node in nodes:
            self.allocator.free(node.block)
        self._root.children.clear()
        return len(nodes)
