"""Data-parallel serving: a router over replicated engines.

The "millions of users" layer: N independent continuous-batching
engines (each optionally tensor-parallel, ``tp`` VMs in lockstep) serve
one arrival stream behind a router.  The :class:`ClusterEngine` owns
the *shared* analytical timeline the way :class:`~repro.dist.MeshExecutor`
owns the mesh clock — generalized to replicas with **independent**
clocks: every scheduling decision steps the lagging replica first, and
an arrival is only routed once no busy replica's clock is behind it, so
routing state (queue depths, free blocks, prefix-cache contents) is
causally consistent with the arrival time.  The whole simulation stays
deterministic: same workload + same seed → identical per-replica
assignment, identical per-replica reports.

Routing policies are pluggable (:data:`ROUTING_POLICIES`):

* ``round_robin`` — arrival order modulo ``dp``; the baseline.
* ``least_loaded`` — fewest in-flight requests, ties broken toward the
  replica with the most free+reclaimable KV blocks, then lowest index.
* ``prefix_affinity`` — radix-match the prompt against each replica's
  live prefix cache (read-only probe) and route to the longest match,
  so one replica accumulates each prompt family's prefix blocks instead
  of every replica recomputing them; falls back to least-loaded when
  nothing matches.

A dp=1 cluster degenerates to the plain engine: the single replica's
:class:`~repro.serve.engine.ServeReport` is byte-identical to a direct
``ServingEngine.run()`` on the same (arrival-ordered) trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from ..models.llama import LlamaConfig
from ..runtime.device import Device
from ..runtime.profiler import ExecutionStats
from .engine import EngineConfig, ServeReport, ServingEngine
from .metrics import summarize
from .slo import SLOConfig, SLOMonitor
from .workload import Request, WorkloadConfig, generate


# -- routing policies ------------------------------------------------------------


class ReplicaView:
    """What a routing policy may observe about one replica at decision
    time: queue/load feedback and a read-only prefix-cache probe.
    Policies never mutate engine state through this."""

    def __init__(self, index: int, engine: ServingEngine):
        self.index = index
        self.engine = engine

    @property
    def in_flight(self) -> int:
        """Routed-but-unfinished requests on this replica (submitted
        pending + queued + running)."""
        run = self.engine.active_run
        if run is None:
            return 0
        sched = run.sched
        return len(run.pending) + sched.queue_depth + sched.num_running

    @property
    def free_blocks(self) -> int:
        """KV blocks obtainable without preemption (free pool plus
        cache-only reclaimable blocks)."""
        run = self.engine.active_run
        if run is None:
            return self.engine.num_blocks
        return run.kv.num_free_blocks + run.kv.num_reclaimable_blocks

    def prefix_match_tokens(self, prompt_tokens) -> int:
        """Longest full-page prefix of ``prompt_tokens`` cached on this
        replica (0 without a cache, token ids, or any match)."""
        run = self.engine.active_run
        if run is None or run.cache is None or not prompt_tokens:
            return 0
        _, matched = run.cache.match(prompt_tokens)
        return matched


class RoutingPolicy:
    """Base: pick a replica index for each arrival, in arrival order."""

    name = "base"

    def choose(self, request: Request, views: Sequence[ReplicaView]) -> int:
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Arrival order modulo dp — load-oblivious baseline."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def choose(self, request: Request, views: Sequence[ReplicaView]) -> int:
        idx = self._next % len(views)
        self._next += 1
        return idx


def _least_loaded_index(views: Sequence[ReplicaView]) -> int:
    # Fewest in-flight; ties prefer the roomiest KV pool, then the
    # lowest index (total order → deterministic routing).
    return min(
        views, key=lambda v: (v.in_flight, -v.free_blocks, v.index)
    ).index


class LeastLoadedPolicy(RoutingPolicy):
    """Queue-depth + free-block feedback."""

    name = "least_loaded"

    def choose(self, request: Request, views: Sequence[ReplicaView]) -> int:
        return _least_loaded_index(views)


class PrefixAffinityPolicy(RoutingPolicy):
    """Route to the replica whose prefix cache holds the longest match
    for this prompt; fall back to least-loaded when nothing matches."""

    name = "prefix_affinity"

    def choose(self, request: Request, views: Sequence[ReplicaView]) -> int:
        tokens = request.prompt_tokens
        matches = [(v.prefix_match_tokens(tokens), v) for v in views]
        best = max(m for m, _ in matches)
        if best > 0:
            return _least_loaded_index(
                [v for m, v in matches if m == best]
            )
        return _least_loaded_index(views)


ROUTING_POLICIES: Dict[str, Type[RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    PrefixAffinityPolicy.name: PrefixAffinityPolicy,
}


def make_policy(name: str) -> RoutingPolicy:
    try:
        cls = ROUTING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; "
            f"choose from {sorted(ROUTING_POLICIES)}"
        ) from None
    return cls()


# -- configuration ---------------------------------------------------------------


@dataclass
class ClusterConfig:
    """A dp×tp serving cluster: ``dp`` engine replicas, each ``tp``-way
    tensor-parallel, behind one router."""

    dp: int = 1
    policy: str = "round_robin"
    #: Per-replica engine configuration (shared template).  Its ``tp`` /
    #: ``interconnect`` are overridden by the fields below when set.
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Tensor-parallel width per replica; ``None`` keeps ``engine.tp``.
    tp: Optional[int] = None
    #: Mesh link model per replica; ``None`` keeps ``engine.interconnect``.
    interconnect: Optional[Any] = None
    #: Fleet SLO monitor windows (anomalies over the merged finish stream).
    slo: SLOConfig = field(default_factory=SLOConfig)

    def __post_init__(self):
        if self.dp < 1:
            raise ValueError(f"dp must be >= 1, got {self.dp}")
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r}; "
                f"choose from {sorted(ROUTING_POLICIES)}"
            )

    def replica_engine_config(self) -> EngineConfig:
        econf = self.engine
        if self.tp is not None or self.interconnect is not None:
            econf = replace(
                econf,
                tp=self.tp if self.tp is not None else econf.tp,
                interconnect=(
                    self.interconnect if self.interconnect is not None
                    else econf.interconnect
                ),
            )
        return econf


# -- the cluster -----------------------------------------------------------------


class ClusterEngine:
    """N replica engines on one shared analytical timeline.

    The event loop interleaves two event kinds in causal order — route
    the next arrival, or step the lagging busy replica — choosing
    *routing* only once every busy replica's clock has reached the
    arrival time.  That is the :class:`~repro.dist.MeshExecutor`
    lockstep discipline generalized to independent clocks: nothing is
    ever decided from a replica state that is still in this arrival's
    past, and no replica executes ahead with knowledge of arrivals from
    its future.
    """

    def __init__(
        self,
        cfg: LlamaConfig,
        device: Device,
        cluster_config: Optional[ClusterConfig] = None,
        **engine_kwargs: Any,
    ):
        self.cfg = cfg
        self.device = device
        self.cconfig = cluster_config or ClusterConfig()
        econf = self.cconfig.replica_engine_config()
        # The compile cache keys on (config, device, flags): replica 0
        # compiles, replicas 1..N-1 reuse the executable.
        self.engines: List[ServingEngine] = [
            ServingEngine(cfg, device, econf, **engine_kwargs)
            for _ in range(self.cconfig.dp)
        ]
        self.policy = make_policy(self.cconfig.policy)
        self._views = [
            ReplicaView(i, e) for i, e in enumerate(self.engines)
        ]

    @property
    def dp(self) -> int:
        return self.cconfig.dp

    def run(self, requests: Sequence[Request]) -> "ClusterReport":
        """Serve the trace across the fleet; returns the merged report."""
        unrouted = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        assignments: List[Tuple[int, int]] = []  # (req_id, replica)
        engines = self.engines
        while unrouted or any(e.has_work for e in engines):
            busy = [i for i, e in enumerate(engines) if e.has_work]
            t_floor = min(engines[i].clock for i in busy) if busy else None
            if unrouted and (
                t_floor is None or unrouted[0].arrival_s <= t_floor
            ):
                # Every busy replica has reached this arrival's time:
                # the router may observe their state and commit.
                r = unrouted.pop(0)
                idx = self.policy.choose(r, self._views)
                if not 0 <= idx < len(engines):
                    raise ValueError(
                        f"policy {self.policy.name!r} routed request "
                        f"{r.req_id} to replica {idx} of {len(engines)}"
                    )
                engines[idx].submit([r])
                assignments.append((r.req_id, idx))
                continue
            # Advance the lagging replica (lowest clock, ties by index).
            idx = min(busy, key=lambda i: (engines[i].clock, i))
            engines[idx].step()
        reports = []
        for e in engines:
            if e.active_run is None:
                # A replica the policy never picked still reports (an
                # empty run): fleet aggregation sees every replica.
                e.submit([])
            reports.append(e.report())
        return ClusterReport.build(
            device=self.device.name,
            model=self.cfg.name,
            policy=self.policy.name,
            replica_reports=reports,
            assignments=assignments,
            slo_config=self.cconfig.slo,
            slo_ttft_s=self.cconfig.replica_engine_config().slo_ttft_s,
            slo_tpot_s=self.cconfig.replica_engine_config().slo_tpot_s,
        )


def _load_balance_entropy(counts: Sequence[int]) -> float:
    """Shannon entropy of the assignment distribution, normalized to
    [0, 1] by ``log(dp)`` — 1.0 is a perfectly even split.  A dp=1
    cluster is vacuously balanced (defined as 1.0)."""
    import math

    if len(counts) <= 1:
        return 1.0
    total = sum(counts)
    if total == 0:
        return 1.0
    h = 0.0
    for c in counts:
        if c:
            p = c / total
            h -= p * math.log(p)
    return h / math.log(len(counts))


@dataclass
class ClusterReport:
    """Fleet-level aggregation over the per-replica ServeReports."""

    device: str
    model: str
    dp: int
    policy: str
    summary: Dict[str, Any]
    replica_reports: List[ServeReport]
    #: ``(req_id, replica)`` in routing (arrival) order.
    assignments: List[Tuple[int, int]]

    @classmethod
    def build(
        cls,
        *,
        device: str,
        model: str,
        policy: str,
        replica_reports: List[ServeReport],
        assignments: List[Tuple[int, int]],
        slo_config: SLOConfig,
        slo_ttft_s: float,
        slo_tpot_s: float,
    ) -> "ClusterReport":
        dp = len(replica_reports)
        all_metrics = [m for rep in replica_reports for m in rep.requests]
        # Deterministic fleet order: by request id (each id lives on
        # exactly one replica).
        all_metrics.sort(key=lambda m: m.req_id)
        summary = summarize(
            all_metrics, slo_ttft_s=slo_ttft_s, slo_tpot_s=slo_tpot_s,
        )
        # Replicas ran concurrently on independent clocks: fleet VM
        # stats follow the lockstep conventions (wall max, counter sum).
        summary["vm"] = ExecutionStats.merge_parallel(
            [rep.stats for rep in replica_reports]
        ).summary()
        counts = [0] * dp
        for _, idx in assignments:
            counts[idx] += 1
        summary["routing"] = {
            "policy": policy,
            "dp": dp,
            "assignments": counts,
            "load_balance_entropy": _load_balance_entropy(counts),
        }
        per_replica: List[Dict[str, Any]] = []
        for i, rep in enumerate(replica_reports):
            s = rep.summary
            row: Dict[str, Any] = {
                "replica": i,
                "num_requests": s["num_requests"],
                "makespan_s": s["makespan_s"],
                "throughput_tokens_per_s": s["throughput_tokens_per_s"],
                "goodput_requests_per_s": s["goodput_requests_per_s"],
                "ttft_mean_s": s["ttft_s"]["mean"],
                "tpot_mean_s": s["tpot_s"]["mean"],
                "preemptions": s["preemptions"],
                "kv_peak_utilization": s["kv_pool"]["peak_utilization"],
            }
            if "prefix_cache" in s:
                row["prefix_cache_hit_rate"] = s["prefix_cache"]["hit_rate"]
                row["cached_token_fraction"] = (
                    s["prefix_cache"]["cached_token_fraction"]
                )
            per_replica.append(row)
        summary["per_replica"] = per_replica
        if any("prefix_cache" in rep.summary for rep in replica_reports):
            # Fleet cache effectiveness: counters sum across replicas,
            # rates recompute from the sums.
            lookups = sum(
                rep.summary["prefix_cache"]["lookups"]
                for rep in replica_reports if "prefix_cache" in rep.summary
            )
            hits = sum(
                rep.summary["prefix_cache"]["hits"]
                for rep in replica_reports if "prefix_cache" in rep.summary
            )
            req_tokens = sum(
                rep.summary["prefix_cache"]["requested_tokens"]
                for rep in replica_reports if "prefix_cache" in rep.summary
            )
            matched = sum(
                rep.summary["prefix_cache"]["matched_tokens"]
                for rep in replica_reports if "prefix_cache" in rep.summary
            )
            summary["prefix_cache"] = {
                "lookups": lookups,
                "hits": hits,
                "hit_rate": hits / lookups if lookups else 0.0,
                "requested_tokens": req_tokens,
                "matched_tokens": matched,
                "cached_token_fraction": (
                    matched / req_tokens if req_tokens else 0.0
                ),
            }
        # Fleet SLO monitor: the merged finish stream in event order
        # ((finish_s, req_id) — deterministic across policies).
        monitor = SLOMonitor(
            slo_config, slo_ttft_s=slo_ttft_s, slo_tpot_s=slo_tpot_s
        )
        finished = sorted(
            (m for m in all_metrics if m.finish_s is not None),
            key=lambda m: (m.finish_s, m.req_id),
        )
        for i, m in enumerate(finished):
            monitor.on_finish(m, t_s=m.finish_s, iteration=i)
        summary["fleet_slo"] = monitor.snapshot()
        return cls(
            device=device,
            model=model,
            dp=dp,
            policy=policy,
            summary=summary,
            replica_reports=replica_reports,
            assignments=assignments,
        )

    # -- export ------------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """Merged Perfetto timeline: one process group per replica.

        Each replica's trace keeps its internal pid layout (engine
        track, request tracks, telemetry extensions), shifted into a
        per-replica pid block and renamed ``replica{i} ...`` — all
        replicas share the one analytical timeline, so the merged view
        lines the fleet up on a common time axis.
        """
        stride = 16  # replica i owns pids [i*stride, (i+1)*stride)
        events: List[Dict[str, Any]] = []
        for i, rep in enumerate(self.replica_reports):
            for ev in rep.chrome_trace()["traceEvents"]:
                ev = dict(ev)
                ev["pid"] = i * stride + ev.get("pid", 0)
                if ev.get("ph") == "M" and ev.get("name") == "process_name":
                    args = dict(ev.get("args", {}))
                    args["name"] = f"replica{i} {args.get('name', '')}"
                    ev["args"] = args
                events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str) -> Dict[str, Any]:
        from ..obs.report import validate_chrome_trace

        trace = validate_chrome_trace(self.chrome_trace())
        with open(path, "w") as f:
            json.dump(trace, f)
        return trace

    def to_dict(self) -> Dict[str, Any]:
        return {
            "device": self.device,
            "model": self.model,
            "dp": self.dp,
            "policy": self.policy,
            "summary": self.summary,
            "assignments": [list(a) for a in self.assignments],
            "replicas": [rep.to_dict() for rep in self.replica_reports],
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)


def serve_cluster(
    cfg: LlamaConfig,
    device: Device,
    workload: "WorkloadConfig | Sequence[Request]",
    cluster_config: Optional[ClusterConfig] = None,
    **engine_kwargs: Any,
) -> ClusterReport:
    """Run a workload through a fresh dp×tp cluster (the cluster-level
    twin of :func:`~repro.serve.engine.serve_workload`)."""
    cluster = ClusterEngine(cfg, device, cluster_config, **engine_kwargs)
    if isinstance(workload, WorkloadConfig):
        requests = generate(workload)
    else:
        requests = list(workload)
    return cluster.run(requests)
