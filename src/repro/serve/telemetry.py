"""Serve-layer telemetry: deterministic metrics registry + engine sampler.

``EngineConfig.telemetry = TelemetryConfig(...)`` turns the serving
engine from a black box into an instrumented system: a metrics registry
(counters / gauges / histograms) sampled once per engine iteration,
request-lifecycle spans (:mod:`repro.obs.spans`), a sliding-window SLO
monitor (:mod:`repro.serve.slo`), Prometheus text exposition and
extended Perfetto tracks (scheduler/pool counters, lifecycle spans, and
— with ``capture_kernels`` — the VM's per-op events re-based onto the
engine clock, provenance and all).

**Determinism contract.**  Telemetry reads engine state; it never
writes any.  With ``telemetry=None`` (the default) the engine's
summary JSON and Perfetto trace are byte-identical to the untelemetered
engine — pinned by the PR 7 baseline hashes in
``tests/serve/test_spec_decode.py``.  With telemetry *on*, every
counter, gauge, histogram, span and anomaly record derives from the
deterministic discrete-event simulation, so two same-seed runs emit
byte-identical telemetry JSON and Prometheus text.  There is no wall
time anywhere: "sliding windows" slide on the analytical clock, and
histogram percentiles are exact nearest-rank values over the window
(:mod:`repro.obs.stats`) — never streaming approximations, which would
trade determinism for memory this simulation does not need to save.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.spans import SpanRecorder
from ..obs.stats import dist, percentile
from ..obs.trace import TraceRecorder
from .slo import SLOConfig, SLOMonitor

Labels = Tuple[Tuple[str, str], ...]


def _labels(kwargs: Dict[str, Any]) -> Labels:
    for k, v in kwargs.items():
        if not isinstance(v, (str, int, float, bool)):
            # Catches the classic misuse counter(name, labels={...}):
            # label values are scalars passed as keyword args.
            raise TypeError(
                f"label {k}={v!r} is not a scalar; pass labels as "
                f"keyword args, e.g. counter(name, kind='llm')"
            )
    return tuple(sorted((k, str(v)) for k, v in kwargs.items()))


def _render(name: str, labels: Labels) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic event count (``_total`` by Prometheus convention)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Labels = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += n


class Gauge:
    """Last-written instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Labels = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value: Optional[float] = None

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """Exact distribution with an optional sliding window on the
    analytical clock.

    Every observation is kept as ``(ts_s, value)``; with ``window_s``
    set, snapshots consider only observations within ``window_s`` of the
    newest one (exact, not bucketed).  Cumulative ``count``/``sum`` are
    retained regardless so rates stay meaningful.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: Labels = (),
                 window_s: Optional[float] = None):
        self.name = name
        self.help = help
        self.labels = labels
        self.window_s = window_s
        self.count = 0
        self.sum = 0.0
        self._obs: List[Tuple[float, float]] = []

    def observe(self, value: float, ts_s: float) -> None:
        self.count += 1
        self.sum += value
        self._obs.append((ts_s, value))
        if self.window_s is not None and self._obs:
            cutoff = self._obs[-1][0] - self.window_s
            # Observations arrive in clock order; prune the aged prefix.
            drop = 0
            while drop < len(self._obs) and self._obs[drop][0] < cutoff:
                drop += 1
            if drop:
                del self._obs[:drop]

    def window_values(self) -> List[float]:
        return [v for _, v in self._obs]

    def snapshot(self) -> Dict[str, Any]:
        values = self.window_values()
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "window_count": len(values),
            "min": min(values) if values else None,
            "max": max(values) if values else None,
        }
        out.update(dist(values))
        return out


class MetricsRegistry:
    """Ordered, label-aware registry of deterministic metrics.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create, so call
    sites never pre-declare.  Exports are sorted by rendered name, which
    makes the JSON/Prometheus output independent of creation order (one
    less way for two runs to differ spuriously).
    """

    def __init__(self, prefix: str = "repro_serve"):
        self.prefix = prefix
        self._metrics: Dict[Tuple[str, Labels], Any] = {}

    def _get(self, cls, name: str, help: str, labels: Labels, **kw):
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help, labels, **kw)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(Counter, name, help, _labels(labels))

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(Gauge, name, help, _labels(labels))

    def histogram(self, name: str, help: str = "",
                  window_s: Optional[float] = None,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, help, _labels(labels),
                         window_s=window_s)

    def metrics(self) -> List[Any]:
        return [m for _, m in sorted(self._metrics.items())]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for m in self.metrics():
            key = _render(m.name, m.labels)
            if m.kind == "counter":
                out["counters"][key] = m.value
            elif m.kind == "gauge":
                out["gauges"][key] = m.value
            else:
                out["histograms"][key] = m.snapshot()
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (histograms as summaries:
        exact quantiles are what this registry has, and quantile labels
        are how the text format carries them)."""
        lines: List[str] = []
        seen_header: set = set()
        for m in self.metrics():
            full = f"{self.prefix}_{m.name}"
            if m.name not in seen_header:
                seen_header.add(m.name)
                if m.help:
                    lines.append(f"# HELP {full} {m.help}")
                ptype = "summary" if m.kind == "histogram" else m.kind
                lines.append(f"# TYPE {full} {ptype}")
            if m.kind in ("counter", "gauge"):
                value = m.value
                if value is None:
                    continue
                rendered = _render(full, m.labels)
                lines.append(f"{rendered} {_fmt(value)}")
            else:
                snap = m.snapshot()
                for q, key in (("0.5", "p50"), ("0.9", "p90"),
                               ("0.99", "p99")):
                    v = snap[key]
                    if v is None:
                        continue
                    quantiled = m.labels + (("quantile", q),)
                    lines.append(f"{_render(full, quantiled)} {_fmt(v)}")
                lines.append(
                    f"{_render(full + '_sum', m.labels)} {_fmt(snap['sum'])}")
                lines.append(
                    f"{_render(full + '_count', m.labels)} {snap['count']}")
        return "\n".join(lines) + "\n"


def _fmt(v: float) -> str:
    """Shortest exact decimal (float repr) — deterministic,
    round-trippable, and uniform whether the metric held an int or a
    float (gauges are fed both)."""
    if isinstance(v, float) and math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(float(v))


@dataclass(frozen=True)
class TelemetryConfig:
    """Turns on serve-layer telemetry (``EngineConfig.telemetry``).

    The default object enables the registry, spans and the SLO monitor;
    ``capture_kernels`` additionally attaches a
    :class:`~repro.obs.trace.TraceRecorder` to every engine VM and
    merges the per-op kernel events into the exported Perfetto file on
    the engine clock (more memory, same simulated results).
    """

    #: Sliding window (simulated seconds) for latency histograms;
    #: ``None`` keeps the full run (exact cumulative percentiles).
    window_s: Optional[float] = None
    #: Merge VM kernel/library events into the Perfetto export.
    capture_kernels: bool = False
    #: SLO monitor knobs (objectives come from the engine config).
    slo: SLOConfig = field(default_factory=SLOConfig)
    #: Prometheus metric-name prefix.
    prefix: str = "repro_serve"


#: Perfetto process ids of the serve export: 0 = engine iterations and
#: counter tracks (pre-existing), 1 = request tracks (pre-existing
#: slices + lifecycle spans), 2 = VM kernel events per model family.
PID_ENGINE = 0
PID_REQUESTS = 1
PID_KERNELS = 2


class EngineTelemetry:
    """Engine-side sampler: one :meth:`on_iteration` call per scheduled
    step folds the whole serve stack into the registry/spans/SLO state.

    Pure observer — it must never influence scheduling, token identity
    or the clock (the telemetry-off byte-identity tests enforce this
    transitively: any leak of telemetry state into engine decisions
    would show up as a vanilla hash drift the moment it lands).
    """

    def __init__(self, config: TelemetryConfig, *, slo_ttft_s: float,
                 slo_tpot_s: float, vm_names: Sequence[str],
                 max_num_seqs: int, max_num_batched_tokens: int):
        self.config = config
        self.registry = MetricsRegistry(prefix=config.prefix)
        self.spans = SpanRecorder()
        self.slo = SLOMonitor(config.slo, slo_ttft_s=slo_ttft_s,
                              slo_tpot_s=slo_tpot_s)
        self.vm_names = list(vm_names)
        self._max_seqs = max_num_seqs
        self._max_tokens = max_num_batched_tokens
        #: Extra Perfetto events (counter samples + kernel slices).
        self.counter_events: List[Dict[str, Any]] = []
        self.kernel_events: List[Dict[str, Any]] = []
        self.refcount_audit: Optional[Dict[str, Any]] = None
        self._saved_tracers: List[Any] = []
        self._prev_cache: Dict[str, float] = {}
        self._prev_alloc: Dict[str, int] = {}
        self._prev_cow = 0
        self._attached = False

    # -- VM kernel capture -------------------------------------------------------

    def attach(self, vms: Sequence[Any]) -> None:
        if not self.config.capture_kernels:
            return
        for vm in vms:
            self._saved_tracers.append(vm.tracer)
            vm.tracer = TraceRecorder()
        self._attached = True

    def detach(self, vms: Sequence[Any]) -> None:
        if not self._attached:
            return
        for vm, saved in zip(vms, self._saved_tracers):
            vm.tracer = saved
        self._saved_tracers.clear()
        self._attached = False

    # -- per-iteration sampling --------------------------------------------------

    def on_iteration(self, *, it, sched, kv, cache, index: int,
                     t_begin: float, t_end: float, swap_s: float,
                     delta, before, vms: Sequence[Any]) -> None:
        from .scheduler import Phase  # local: avoid cycle at import time

        reg = self.registry
        us = 1e6
        window = self.config.window_s

        # ---- counters: work committed and resources moved this step
        reg.counter("iterations_total", "scheduled engine iterations").inc()
        first_tokens = sum(
            1 for state, past, chunk in it.prefill
            if past + chunk == state.prefill_target
            and state.generated == 1
            and state.metrics.token_times
            and state.metrics.token_times[-1] == t_end
        )
        committed = (
            len(it.decode)
            + sum(it.spec_accepted.values()) + len(it.spec_decode)
            + len(it.steps)
            + first_tokens
        )
        reg.counter("tokens_total", "output units committed",
                    path="decode").inc(len(it.decode))
        if it.spec_decode:
            reg.counter("tokens_total", "output units committed",
                        path="spec").inc(
                sum(it.spec_accepted.values()) + len(it.spec_decode))
        if it.steps:
            reg.counter("tokens_total", "output units committed",
                        path="step").inc(len(it.steps))
        if first_tokens:
            reg.counter("tokens_total", "output units committed",
                        path="prefill_first").inc(first_tokens)
        reg.counter("prefill_tokens_total", "prompt tokens prefilled").inc(
            sum(n for _, _, n in it.prefill))
        for _, _, mode in it.preempted:
            reg.counter("preemptions_total", "sequences evicted",
                        mode=mode).inc()
        if it.swapped_in:
            reg.counter("swapins_total", "sequences restored from host").inc(
                len(it.swapped_in))
        reg.counter("swap_seconds_total", "host-link swap time").inc(swap_s)
        reg.counter("vm_seconds_total", "simulated device time").inc(
            delta.time_s)
        reg.counter("kernel_launches_total", "VM kernel launches").inc(
            delta.kernel_launches)
        if it.spec_decode:
            proposed = sum(k for _, _, k in it.spec_decode)
            accepted = sum(it.spec_accepted.values())
            reg.counter("spec_proposed_total", "draft tokens proposed").inc(
                proposed)
            reg.counter("spec_accepted_total", "draft tokens accepted").inc(
                accepted)
            reg.counter("spec_rollback_tokens_total",
                        "rejected draft KV rolled back").inc(
                proposed - accepted)
        if it.cache_hits:
            reg.counter("prefix_cache_hits_total",
                        "admissions served from cache").inc(
                len(it.cache_hits))
            reg.counter("prefix_cache_tokens_total",
                        "prompt tokens served from cache").inc(
                sum(n for _, n in it.cache_hits))

        # ---- pool/refcount traffic (deltas of cumulative sources)
        alloc = kv.allocator
        traffic = {
            "allocated": alloc.allocated_total,
            "freed": alloc.freed_total,
            "ref_drops": alloc.ref_drops_total,
            "shares": alloc.shares_total,
        }
        for key, total in traffic.items():
            prev = self._prev_alloc.get(key, 0)
            if total > prev:
                reg.counter("kv_block_ops_total",
                            "allocator reference traffic", op=key).inc(
                    total - prev)
            self._prev_alloc[key] = total
        if kv.cow_copies > self._prev_cow:
            reg.counter("kv_cow_copies_total", "copy-on-write forks").inc(
                kv.cow_copies - self._prev_cow)
        self._prev_cow = kv.cow_copies
        if cache is not None:
            stats = cache.stats
            for key in ("lookups", "hits", "evictions", "inserts"):
                total = getattr(stats, key)
                prev = self._prev_cache.get(key, 0)
                if total > prev:
                    reg.counter("prefix_cache_ops_total",
                                "prefix-cache operations", op=key).inc(
                        total - prev)
                self._prev_cache[key] = total

        # ---- gauges: instantaneous engine state at t_end
        waiting = len(sched.waiting)
        swapped = len(sched.swapped)
        running = len(sched.running)
        occupancy = running / self._max_seqs if self._max_seqs else 0.0
        budget_util = (
            it.num_batched_tokens / self._max_tokens
            if self._max_tokens else 0.0
        )
        reg.gauge("queue_depth", "waiting + swapped requests").set(
            sched.queue_depth)
        reg.gauge("waiting_requests", "requests awaiting admission").set(
            waiting)
        reg.gauge("swapped_requests", "requests swapped to host").set(swapped)
        reg.gauge("running_requests", "requests in the running set").set(
            running)
        reg.gauge("batch_occupancy", "running / max_num_seqs").set(occupancy)
        reg.gauge("token_budget_utilization",
                  "batched tokens / max_num_batched_tokens").set(budget_util)
        reg.gauge("kv_free_blocks", "free pool blocks").set(
            kv.num_free_blocks)
        reg.gauge("kv_reclaimable_blocks", "cache-only blocks").set(
            kv.num_reclaimable_blocks)
        reg.gauge("kv_required_utilization",
                  "pool pressure net of reclaimable blocks").set(
            kv.required_utilization())
        reg.gauge("kv_fragmentation",
                  "unused slots in allocated pages").set(kv.fragmentation())
        reg.gauge("unevictable_blocks",
                  "blocks reserved for unevictable programs").set(
            sched.unevictable_blocks)
        if cache is not None:
            reg.gauge("prefix_cache_hit_rate", "cumulative hit rate").set(
                cache.stats.hit_rate)

        # ---- histograms (sliding window on the analytical clock)
        reg.histogram("iteration_seconds", "engine iteration duration",
                      window_s=window).observe(t_end - t_begin, t_end)
        reg.histogram("iteration_batched_tokens",
                      "token budget consumed per iteration",
                      window_s=window).observe(it.num_batched_tokens, t_end)
        if it.decode or it.spec_decode:
            reg.histogram("decode_batch_size",
                          "sequences per batched decode/verify call",
                          window_s=window).observe(
                len(it.decode) + len(it.spec_decode), t_end)

        # ---- Perfetto counter tracks (one sample per iteration)
        def counter(name: str, args: Dict[str, Any]) -> None:
            self.counter_events.append({
                "name": name, "ph": "C", "pid": PID_ENGINE, "tid": 0,
                "ts": t_end * us, "args": args,
            })

        counter("sched_queue", {"waiting": waiting, "swapped": swapped})
        counter("batch_occupancy", {"running": running})
        counter("token_budget_util", {"used": budget_util})
        counter("kv_pressure", {
            "required": kv.allocator.num_used - kv.num_reclaimable_blocks,
            "reclaimable": kv.num_reclaimable_blocks,
        })
        counter("kv_fragmentation", {"frac": kv.fragmentation()})
        if cache is not None:
            counter("prefix_cache_hit_rate",
                    {"rate": cache.stats.hit_rate})
        if it.spec_decode:
            counter("spec_tokens", {
                "proposed": sum(k for _, _, k in it.spec_decode),
                "accepted": sum(it.spec_accepted.values()),
            })

        # ---- per-shard mesh tracks (tensor parallelism): one counter
        # track per rank, sampled from the live lockstep stats.  The
        # kv_pressure sample is per-shard bytes resident in that rank's
        # pool — identical across ranks under SPMD, which is exactly the
        # invariant the track makes visible.
        for vm_name, vm in zip(self.vm_names, vms):
            shards = getattr(vm, "shard_stats", None)
            if not shards or len(shards) < 2:
                continue
            for rank, s in enumerate(shards):
                counter(f"{vm_name}_shard{rank}_comm", {
                    "comm_time_s": s.comm_time_s,
                    "comm_fraction": (
                        s.comm_time_s / s.time_s if s.time_s else 0.0
                    ),
                })
                counter(f"{vm_name}_shard{rank}_kv_pressure", {
                    "resident_bytes": s.current_bytes,
                })

        # ---- lifecycle spans
        spans = self.spans
        for state in it.admitted:
            spans.admitted(
                state.seq_id, state.request.arrival_s, t_begin,
                kind=state.request.kind,
                prompt_len=state.request.prompt_len,
                output_len=state.request.output_len,
            )
        for state, copied in it.swapped_in:
            spans.resumed(state.seq_id, t_begin, copied_tokens=copied)
        for state, _, chunk in it.prefill:
            spans.activity(state.seq_id, "prefill", t_begin, t_end)
        for state in it.decode:
            spans.activity(state.seq_id, "decode", t_begin, t_end)
        for state, _, k in it.spec_decode:
            spans.activity(state.seq_id, "spec_decode", t_begin, t_end)
        for state, _ in it.steps:
            spans.activity(state.seq_id, state.program.stepped.name,
                           t_begin, t_end)
        for state, phase_name, _, _ in it.chunks:
            spans.activity(state.seq_id, phase_name, t_begin, t_end)
        for state, tokens, mode in it.preempted:
            spans.preempted(state.seq_id, t_begin, mode,
                            swapped_tokens=tokens)

        # ---- completions: SLO window + span close
        finished: List[Any] = []
        seen: set = set()
        participants = (
            list(it.decode)
            + [s for s, _, _ in it.spec_decode]
            + [s for s, _ in it.steps]
            + [s for s, _, _ in it.prefill]
        )
        for state in participants:
            if state.seq_id in seen:
                continue
            seen.add(state.seq_id)
            if (state.phase is Phase.FINISHED
                    and state.metrics.finish_s == t_end):
                finished.append(state)
        for state in finished:
            m = state.metrics
            spans.finished(state.seq_id, t_end,
                           output_tokens=len(m.token_times),
                           preemptions=m.preemptions)
            self.slo.on_finish(m, t_end, index)
            if m.ttft is not None:
                reg.histogram("ttft_seconds", "time to first token",
                              window_s=window).observe(m.ttft, t_end)
            if m.tpot is not None:
                reg.histogram("tpot_seconds", "time per output token",
                              window_s=window).observe(m.tpot, t_end)
            if m.e2e_latency is not None:
                reg.histogram("e2e_seconds", "request latency",
                              window_s=window).observe(m.e2e_latency, t_end)
            reg.counter("requests_finished_total", "completed requests",
                        kind=m.kind).inc()
        self.slo.on_iteration(index, t_end, committed=committed,
                              preemptions=len(it.preempted),
                              queue_depth=sched.queue_depth)

        # ---- VM kernel merge onto the engine clock
        if self._attached:
            for i, vm in enumerate(vms):
                tracer = vm.tracer
                base = before[i].time_s
                for e in tracer.events:
                    if e.kind in ("alloc", "free"):
                        continue
                    args = {k: v for k, v in e.args.items()
                            if isinstance(v, (int, float, str, bool))}
                    if e.prov:
                        from ..obs.provenance import render as _prov
                        args["provenance"] = _prov(e.prov)
                    self.kernel_events.append({
                        "name": e.name,
                        "cat": e.kind,
                        "ph": "X",
                        "pid": PID_KERNELS,
                        "tid": i,
                        "ts": (t_begin + (e.ts_s - base)) * us,
                        "dur": e.dur_s * us,
                        "args": args,
                    })
                tracer.clear()

    # -- teardown ---------------------------------------------------------------

    def finalize(self, *, clock: float, kv) -> None:
        self.spans.finalize(clock)
        self.refcount_audit = kv.refcount_audit()
        reg = self.registry
        att = self.slo.window_ttft_attainment
        if att is not None:
            reg.gauge("slo_window_ttft_attainment",
                      "TTFT attainment over the recent window").set(att)
        att = self.slo.window_tpot_attainment
        if att is not None:
            reg.gauge("slo_window_tpot_attainment",
                      "TPOT attainment over the recent window").set(att)
        reg.gauge("slo_anomalies", "anomaly records").set(
            len(self.slo.anomalies))

    # -- export ------------------------------------------------------------------

    def trace_extension(self) -> List[Dict[str, Any]]:
        """Events to append to the engine's Perfetto export: lifecycle
        spans on the request tracks, counter samples on the engine
        process, kernel slices on their own process."""
        meta: List[Dict[str, Any]] = []
        if self.kernel_events:
            meta.append({
                "name": "process_name", "ph": "M", "pid": PID_KERNELS,
                "tid": 0, "args": {"name": "vm kernels"},
            })
            for i, vm_name in enumerate(self.vm_names):
                meta.append({
                    "name": "thread_name", "ph": "M", "pid": PID_KERNELS,
                    "tid": i, "args": {"name": f"vm[{vm_name}]"},
                })
        return (
            meta
            + self.spans.chrome_events(pid=PID_REQUESTS)
            + self.counter_events
            + self.kernel_events
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": {
                "window_s": self.config.window_s,
                "capture_kernels": self.config.capture_kernels,
                "prefix": self.config.prefix,
            },
            "metrics": self.registry.to_dict(),
            "slo": self.slo.snapshot(),
            "spans": self.spans.to_dicts(),
            "refcount_audit": self.refcount_audit,
        }

    def summary_brief(self) -> Dict[str, Any]:
        """The headline block the engine folds into the run summary."""
        snap = self.slo.snapshot()
        return {
            "window_ttft_attainment": snap["window_ttft_attainment"],
            "window_tpot_attainment": snap["window_tpot_attainment"],
            "anomaly_counts": snap["anomaly_counts"],
            "num_spans": len(self.spans.spans),
            "num_metrics": len(self.registry.metrics()),
        }

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()
