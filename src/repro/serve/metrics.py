"""Serving metrics: latency percentiles, goodput, utilisation.

The quantities LLM-serving papers report: TTFT (time to first token —
queueing + prefill), TPOT (time per output token after the first), ITL
(inter-token latency distribution), throughput, and goodput — requests
per second that met *both* latency SLOs.  Percentiles use the
nearest-rank definition so results are exact data points, never
interpolated values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

# The nearest-rank percentile/distribution helpers are shared with the
# telemetry registry and the obs report layer (one regression-tested
# implementation); re-exported here because the serving API always
# offered them under this module.
from ..obs.stats import dist as _shared_dist
from ..obs.stats import percentile


@dataclass
class RequestMetrics:
    """Per-request timeline filled in by the engine as it runs."""

    req_id: int
    arrival_s: float
    prompt_len: int
    output_len: int
    #: Simulated time each output token became available (first entry is
    #: the token produced by the final prefill chunk).
    token_times: List[float] = field(default_factory=list)
    finish_s: Optional[float] = None
    preemptions: int = 0
    #: Prompt tokens served from the prefix cache at first admission
    #: (``None`` until admitted, or when prefix caching is off).
    cached_prompt_tokens: Optional[int] = None
    #: Request type ("llm", "whisper", "denoise", ...); heterogeneous
    #: runs report latency distributions per type.
    kind: str = "llm"
    #: Output token ids in emission order (filled from the engine's token
    #: oracle).  In-memory only — never serialized — so speculative runs
    #: can be checked token-for-token against vanilla runs without
    #: perturbing the summary/report byte format.
    output_tokens: List[int] = field(default_factory=list)
    #: Draft tokens proposed for / accepted by this request across all
    #: its speculative steps (all stay 0 when speculation is off).
    #: ``spec_checked`` counts positions the greedy-match verifier
    #: actually examined (it stops at the first mismatch): each check is
    #: an independent Bernoulli(draft_quality) draw, so
    #: ``accepted / checked`` converges to the configured draft quality
    #: while ``accepted / proposed`` sits strictly below it.
    spec_proposed: int = 0
    spec_accepted: int = 0
    spec_checked: int = 0

    @property
    def first_token_s(self) -> Optional[float]:
        return self.token_times[0] if self.token_times else None

    @property
    def ttft(self) -> Optional[float]:
        if not self.token_times:
            return None
        return self.token_times[0] - self.arrival_s

    @property
    def tpot(self) -> Optional[float]:
        """Mean decode latency per output token after the first."""
        if self.finish_s is None or len(self.token_times) < 2:
            return None
        span = self.token_times[-1] - self.token_times[0]
        return span / (len(self.token_times) - 1)

    @property
    def itl(self) -> List[float]:
        return [
            b - a for a, b in zip(self.token_times, self.token_times[1:])
        ]

    @property
    def e2e_latency(self) -> Optional[float]:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s


def summarize(
    requests: Sequence[RequestMetrics],
    *,
    slo_ttft_s: float = 1.0,
    slo_tpot_s: float = 0.1,
    queue_depth_samples: Sequence[int] = (),
    kv_utilization_samples: Sequence[float] = (),
    kinds: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Aggregate a finished run into one JSON-ready dict.

    ``kinds`` optionally names every request type the *workload*
    contained.  The per-type breakdown is keyed on the union of this and
    the kinds present in ``requests`` — so a type whose requests were all
    rejected before reaching the engine still appears, with zero counts
    and ``None`` distribution fields, instead of silently vanishing from
    the breakdown (consumers diffing sweeps rely on a stable key set).
    """
    done = [r for r in requests if r.finish_s is not None]
    ttfts = [r.ttft for r in done if r.ttft is not None]
    tpots = [r.tpot for r in done if r.tpot is not None]
    itls = [gap for r in done for gap in r.itl]
    makespan = max((r.finish_s for r in done), default=0.0)
    total_tokens = sum(len(r.token_times) for r in done)

    def within_slo(r: RequestMetrics) -> bool:
        if r.ttft is None or r.ttft > slo_ttft_s:
            return False
        tpot = r.tpot
        return tpot is None or tpot <= slo_tpot_s

    good = sum(1 for r in done if within_slo(r))
    dist = _shared_dist

    summary: Dict[str, Any] = {
        "num_requests": len(requests),
        "num_finished": len(done),
        "makespan_s": makespan,
        "total_output_tokens": total_tokens,
        "throughput_tokens_per_s": (
            total_tokens / makespan if makespan > 0 else 0.0
        ),
        "throughput_requests_per_s": (
            len(done) / makespan if makespan > 0 else 0.0
        ),
        "goodput_requests_per_s": good / makespan if makespan > 0 else 0.0,
        "slo": {"ttft_s": slo_ttft_s, "tpot_s": slo_tpot_s,
                "attained": good, "fraction": good / len(done) if done else 0.0},
        "ttft_s": dist(ttfts),
        "tpot_s": dist(tpots),
        "itl_s": dist(itls),
        "preemptions": sum(r.preemptions for r in requests),
    }
    all_kinds = sorted({r.kind for r in requests} | set(kinds or ()))
    if all_kinds and all_kinds != ["llm"]:
        # Heterogeneous run: break the latency distributions out per
        # request type.  For iterative-denoise requests ``itl_s`` is the
        # per-step latency distribution (each "token" is one denoise
        # iteration).  LLM-only runs omit this key so their summaries are
        # byte-identical to the pre-heterogeneous format.
        per_type: Dict[str, Any] = {}
        for kind in all_kinds:
            kdone = [r for r in done if r.kind == kind]
            per_type[kind] = {
                "num_requests": sum(1 for r in requests if r.kind == kind),
                "num_finished": len(kdone),
                "total_output_tokens": sum(len(r.token_times) for r in kdone),
                "ttft_s": dist([r.ttft for r in kdone if r.ttft is not None]),
                "tpot_s": dist([r.tpot for r in kdone if r.tpot is not None]),
                "itl_s": dist([gap for r in kdone for gap in r.itl]),
                "preemptions": sum(
                    r.preemptions for r in requests if r.kind == kind
                ),
            }
        summary["per_type"] = per_type
    if queue_depth_samples:
        summary["queue_depth"] = {
            "mean": sum(queue_depth_samples) / len(queue_depth_samples),
            "max": max(queue_depth_samples),
        }
    if kv_utilization_samples:
        summary["kv_block_utilization"] = {
            "mean": sum(kv_utilization_samples) / len(kv_utilization_samples),
            "max": max(kv_utilization_samples),
        }
    return summary
