"""Per-model request programs: the phase-step protocol.

A request is no longer hard-coded as *prefill then decode*.  Each model
family declares a :class:`RequestProgram`: an ordered list of **chunked
phases** (budget-sliced work the scheduler may spread across iterations)
followed by one **stepped phase** (the iterative tail that emits one
output unit per engine iteration).  The scheduler manipulates programs
only through this protocol — it never inspects the request kind — so a
new model family plugs in by writing a program class, not by editing the
scheduler:

* **LLM**: chunked prefill (1 KV token appended to the self stream per
  prompt token), then decode steps (1 KV token per step).
* **Whisper**: chunked encode (no KV; frames are stacked in pairs, so
  chunks stay even), an atomic cross-KV projection (writes ``t`` encoder
  K/V tokens to the *cross* stream once — never appended again), then
  decode steps (1 self-stream KV token per step, reading both streams).
* **Iterative denoise**: no chunked work and no KV at all — just N
  stepped iterations over a fixed latent.

KV-block demand, token-budget accounting, preemption eligibility and the
completion predicate all live here; ``scheduler.py`` is generic over
them.  See DESIGN.md §11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .workload import Request

#: KV stream names.  Every program owns a *self* stream (sequence id ==
#: request id) and may own a *cross* stream (sequence id == ``~req_id``)
#: in the same shared block pool.
SELF_STREAM = "self"
CROSS_STREAM = "cross"


def stream_seq_id(req_id: int, stream: str) -> int:
    """Block-pool sequence id for one stream of a request.

    The cross stream uses the bitwise complement of the request id —
    disjoint from every self-stream id, so both streams of a request can
    coexist in one :class:`~repro.serve.kv_cache.PagedKVCache`.
    """
    return req_id if stream == SELF_STREAM else ~req_id


@dataclass
class ChunkedPhase:
    """Budget-sliced phase work (prefill / encode / cross-projection).

    ``target`` units must be processed; the scheduler slices them into
    chunks against the shared token budget.  Each unit appends
    ``kv_per_unit`` KV tokens to ``stream``.
    """

    name: str
    target: int
    kv_per_unit: int = 0
    stream: str = SELF_STREAM
    #: Chunk sizes must be a multiple of this (final chunk excepted only
    #: when it completes the phase).  Whisper's frontend stacks frame
    #: pairs, so its encode phase uses 2.
    chunk_multiple: int = 1
    #: All-or-nothing: the phase must be scheduled as one chunk (the
    #: cross-KV projection writes every encoder position at once).
    atomic: bool = False
    done: int = 0

    @property
    def remaining(self) -> int:
        return self.target - self.done


@dataclass
class SteppedPhase:
    """The iterative tail: one output unit per scheduled step."""

    name: str
    target: int
    #: KV tokens appended to the self stream per step (0 = the phase
    #: never grows the pool, e.g. denoise).
    kv_per_step: int = 1
    #: Token-budget units one step consumes.  1 for an LLM/Whisper decode
    #: token; heavier constant-cost steps (a denoise iteration touches
    #: every latent token) may charge more.
    budget_per_step: int = 1
    #: Speculative variant: maximum draft tokens proposed alongside each
    #: step.  0 (the default) is the vanilla one-token step; k > 0 lets
    #: the scheduler plan a draft/verify step that appends up to
    #: ``(1 + k) * kv_per_step`` KV tokens optimistically (the engine
    #: rolls back whatever the target rejects) and charges ``1 + k``
    #: budget units.  The actual width per step is
    #: ``min(k, remaining_output - 1)``, so speculation degenerates to a
    #: vanilla step on a request's final token.
    max_spec_tokens: int = 0


class RequestProgram:
    """Phase-step program for one request.  Subclass per model family."""

    #: Request type tag (mirrors ``Request.kind``).
    kind: str = "llm"
    #: May the scheduler evict this request's KV under pool pressure?
    #: Programs with write-once cross streams opt out: their KV cannot be
    #: regrown by re-running a prefix, so they are never chosen as
    #: preemption victims (see DESIGN.md §11).
    evictable: bool = True
    #: May the engine probe/populate the radix prefix cache with this
    #: request's prompt?
    prefix_cacheable: bool = False
    #: Do this program's steps join the engine's homogeneous batched
    #: decode call (``Iteration.decode``)?  Programs without engine-side
    #: batch support run per-request via ``Iteration.steps``.
    batched_decode: bool = False

    def __init__(self, request: Request, chunked: List[ChunkedPhase],
                 stepped: SteppedPhase):
        self.request = request
        self.chunked = chunked
        self.stepped = stepped

    # -- chunked-phase protocol -------------------------------------------------

    def current_chunked(self) -> Optional[ChunkedPhase]:
        for ph in self.chunked:
            if ph.remaining > 0:
                return ph
        return None

    def has_chunked_work(self) -> bool:
        return self.current_chunked() is not None

    def pending_kv_tokens(self) -> int:
        """KV tokens the remaining chunked work will append (admission
        gate: can the pool ever fit this request's phase-declared
        demand?)."""
        return sum(ph.remaining * ph.kv_per_unit for ph in self.chunked)

    # -- stepped-phase protocol -------------------------------------------------

    def is_complete(self, generated: int) -> bool:
        """Completion predicate over emitted output units."""
        return generated >= self.stepped.target

    # -- KV ownership -----------------------------------------------------------

    def streams(self) -> List[str]:
        """Streams this program may own in the shared pool."""
        out = [SELF_STREAM]
        for ph in self.chunked:
            if ph.kv_per_unit > 0 and ph.stream not in out:
                out.append(ph.stream)
        return out

    def uses_kv(self) -> bool:
        return self.stepped.kv_per_step > 0 or any(
            ph.kv_per_unit > 0 and ph.stream == SELF_STREAM
            for ph in self.chunked
        )

    def lifetime_kv_blocks(self, page_size: int) -> int:
        """Worst-case pool blocks this request holds at completion,
        per stream (each stream rounds up to whole pages).

        Unevictable programs are admission-gated on this: once their KV
        is written it can never be preempted away, so the scheduler must
        guarantee up front that all concurrently admitted unevictable
        requests fit the pool together."""
        per_stream = {}
        for ph in self.chunked:
            if ph.kv_per_unit > 0:
                per_stream[ph.stream] = (
                    per_stream.get(ph.stream, 0) + ph.target * ph.kv_per_unit
                )
        if self.stepped.kv_per_step > 0:
            per_stream[SELF_STREAM] = (
                per_stream.get(SELF_STREAM, 0)
                + self.stepped.target * self.stepped.kv_per_step
            )
        return sum(-(-t // page_size) for t in per_stream.values())

    # -- preemption/swap cost hooks ---------------------------------------------

    def swap_tokens(self, private_tokens: int) -> int:
        """KV tokens that must cross the host link when this request is
        swapped out (and back in).  Default: every private token."""
        return private_tokens


class LLMProgram(RequestProgram):
    """Chunked prefill, then one decode step per output token."""

    kind = "llm"
    evictable = True
    prefix_cacheable = True
    batched_decode = True

    def __init__(self, request: Request, *, spec_tokens: int = 0):
        super().__init__(
            request,
            chunked=[ChunkedPhase("prefill", target=request.prompt_len,
                                  kv_per_unit=1)],
            stepped=SteppedPhase("decode", target=request.output_len,
                                 max_spec_tokens=spec_tokens),
        )


class WhisperProgram(RequestProgram):
    """Chunked encode → atomic cross-KV projection → decode steps.

    ``prompt_len`` is the mel-frame count; the frontend's 2x frame
    stacking makes the encoder context ``t = frames // 2``.  The cross
    projection writes ``t`` K/V tokens to the cross stream exactly once.
    """

    kind = "whisper"
    evictable = False
    prefix_cacheable = False

    def __init__(self, request: Request):
        frames = request.prompt_len
        if frames % 2 != 0:
            raise ValueError("whisper requests need an even mel-frame count")
        t = frames // 2
        super().__init__(
            request,
            chunked=[
                ChunkedPhase("encode", target=frames, chunk_multiple=2),
                ChunkedPhase("cross_project", target=t, kv_per_unit=1,
                             stream=CROSS_STREAM, atomic=True),
            ],
            stepped=SteppedPhase("decode", target=request.output_len),
        )

    @property
    def enc_positions(self) -> int:
        return self.request.prompt_len // 2


class DenoiseProgram(RequestProgram):
    """N stepped denoise iterations; no chunked work, no KV growth."""

    kind = "denoise"
    evictable = False
    prefix_cacheable = False

    def __init__(self, request: Request, *, budget_per_step: int = 1):
        super().__init__(
            request,
            chunked=[],
            stepped=SteppedPhase("denoise", target=request.output_len,
                                 kv_per_step=0,
                                 budget_per_step=budget_per_step),
        )


def program_for(request: Request, *,
                denoise_budget_per_step: int = 1,
                llm_spec_tokens: int = 0) -> RequestProgram:
    """Default program factory keyed on ``Request.kind``."""
    if request.kind == "llm":
        return LLMProgram(request, spec_tokens=llm_spec_tokens)
    if request.kind == "whisper":
        return WhisperProgram(request)
    if request.kind == "denoise":
        return DenoiseProgram(request,
                              budget_per_step=denoise_budget_per_step)
    raise ValueError(f"no program registered for request kind {request.kind!r}")
