"""Model construction frontends: nn.Module interface and quantization."""

from .nn import (
    Embedding,
    ExportedModule,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    RMSNorm,
    export_module,
)
from .quantize import (
    QuantizedLinear,
    decode_prim_func,
    dequantize_weight,
    quantize_weight,
)

__all__ = [
    "Embedding",
    "ExportedModule",
    "LayerNorm",
    "Linear",
    "Module",
    "Parameter",
    "QuantizedLinear",
    "RMSNorm",
    "decode_prim_func",
    "dequantize_weight",
    "export_module",
    "quantize_weight",
]
