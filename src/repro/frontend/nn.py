"""PyTorch-like ``nn.Module`` frontend (paper §5.1: "We construct Relax IR
with a PyTorch-like nn.Module interface").

A module tree declares :class:`Parameter` leaves; :func:`export_module`
turns a set of forward functions into one IRModule whose functions take the
user inputs first and every parameter after them (in stable traversal
order), so a compiled executable can be invoked with abstract
(paper-configuration-sized) or concrete (test-sized) weights alike.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import dtypes, ops
from ..core import BlockBuilder, IRModule, TensorAnn, Var
from ..core.annotations import Annotation
from ..core.expr import Expr
from ..runtime import NDArray


class Parameter:
    """A named weight with a (static) shape and dtype."""

    def __init__(self, shape: Sequence[int], dtype: str = "f32"):
        self.shape = tuple(int(d) for d in shape)
        self.dtype = dtypes.check_dtype(dtype)
        self.name: Optional[str] = None  # assigned at export
        self._var: Optional[Var] = None
        self.data: Optional[np.ndarray] = None

    @property
    def var(self) -> Var:
        if self._var is None:
            raise RuntimeError(
                f"parameter {self.name or '<unnamed>'} used outside export"
            )
        return self._var

    def num_elements(self) -> int:
        count = 1
        for d in self.shape:
            count *= d
        return count

    def size_bytes(self) -> int:
        return self.num_elements() * dtypes.itemsize(self.dtype)

    def initialize(self, rng: np.random.Generator, scale: float = 0.02) -> None:
        array = rng.standard_normal(self.shape) * scale
        self.data = array.astype(dtypes.to_numpy(self.dtype))


class Module:
    """Base class; submodules and Parameters register via attribute set."""

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Parameter]]:
        out: List[Tuple[str, Parameter]] = []
        for name, value in vars(self).items():
            path = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Parameter):
                out.append((path, value))
            elif isinstance(value, Module):
                out.extend(value.named_parameters(path))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        out.extend(item.named_parameters(f"{path}.{i}"))
                    elif isinstance(item, Parameter):
                        out.append((f"{path}.{i}", item))
        return out

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.num_elements() for p in self.parameters())

    def initialize(self, seed: int = 0, scale: float = 0.02) -> None:
        rng = np.random.default_rng(seed)
        for _, param in self.named_parameters():
            param.initialize(rng, scale)


# -- standard layers ---------------------------------------------------------------


class Linear(Module):
    def __init__(self, in_features: int, out_features: int, bias: bool = False,
                 dtype: str = "f32"):
        self.weight = Parameter((in_features, out_features), dtype)
        self.bias = Parameter((out_features,), dtype) if bias else None

    def forward(self, bb: BlockBuilder, x: Expr) -> Expr:
        out = bb.emit(ops.matmul(x, self.weight.var))
        if self.bias is not None:
            out = bb.emit(ops.add(out, self.bias.var))
        return out


class Embedding(Module):
    def __init__(self, vocab: int, dim: int, dtype: str = "f32"):
        self.weight = Parameter((vocab, dim), dtype)

    def forward(self, bb: BlockBuilder, token_ids: Expr) -> Expr:
        return bb.emit(ops.take(self.weight.var, token_ids, axis=0))


class RMSNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5, dtype: str = "f32"):
        self.weight = Parameter((dim,), dtype)
        self.eps = eps

    def forward(self, bb: BlockBuilder, x: Expr) -> Expr:
        return bb.emit(ops.rms_norm(x, self.weight.var, eps=self.eps))


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5, dtype: str = "f32"):
        self.gamma = Parameter((dim,), dtype)
        self.beta = Parameter((dim,), dtype)
        self.eps = eps

    def forward(self, bb: BlockBuilder, x: Expr) -> Expr:
        return bb.emit(ops.layer_norm(x, self.gamma.var, self.beta.var, eps=self.eps))


# -- export -----------------------------------------------------------------------

#: A forward function: (bb, *input_vars) -> output expression.
ForwardFn = Callable[..., Expr]

#: Export spec: function name -> (ordered input annotations, forward fn).
ExportSpec = Dict[str, Tuple[Dict[str, Annotation], ForwardFn]]


class ExportedModule:
    """An IRModule plus the parameter order its functions expect."""

    def __init__(self, mod: IRModule, module: Module,
                 param_order: List[Tuple[str, Parameter]]):
        self.mod = mod
        self.module = module
        self.param_order = param_order

    def abstract_params(self) -> List[NDArray]:
        """Shape-only parameter arrays (paper-scale benchmarking)."""
        return [
            NDArray.abstract(p.shape, p.dtype) for _, p in self.param_order
        ]

    def concrete_params(self) -> List[NDArray]:
        """NumPy-backed parameter arrays (requires initialize())."""
        arrays = []
        for name, p in self.param_order:
            if p.data is None:
                raise RuntimeError(f"parameter {name} has no data; call initialize()")
            arrays.append(NDArray.from_numpy(p.data))
        return arrays

    def param_bytes(self) -> int:
        return sum(p.size_bytes() for _, p in self.param_order)


class ShardedExportedModule(ExportedModule):
    """A tensor-parallel export: one SPMD IRModule + per-rank weights.

    The IRModule has been through ``PropagateSharding`` / ``LowerSharding``
    — every rank interprets the same functions, differing only in which
    slice of each split parameter it holds.  ``abstract_params`` /
    ``concrete_params`` take the rank and materialize that slice.
    """

    def __init__(self, mod, module: Module,
                 param_order: List[Tuple[str, Parameter]], plan):
        super().__init__(mod, module, param_order)
        self.plan = plan
        self.world = plan.world

    def _spec(self, pname: str):
        return self.plan.spec_for(f"p_{pname.replace('.', '_')}")

    def _shard_shape(self, pname: str, p: Parameter) -> Tuple[int, ...]:
        spec = self._spec(pname)
        if not spec.is_split:
            return p.shape
        shape = list(p.shape)
        shape[spec.dim] //= self.world
        return tuple(shape)

    def abstract_params(self, rank: int = 0) -> List[NDArray]:
        return [
            NDArray.abstract(self._shard_shape(name, p), p.dtype)
            for name, p in self.param_order
        ]

    def concrete_params(self, rank: int = 0) -> List[NDArray]:
        from ..dist.shard import shard_slice

        arrays = []
        for name, p in self.param_order:
            if p.data is None:
                raise RuntimeError(
                    f"parameter {name} has no data; call initialize()"
                )
            arrays.append(NDArray.from_numpy(
                shard_slice(p.data, self._spec(name), self.world, rank)
            ))
        return arrays

    def param_bytes(self) -> int:
        """Per-rank weight bytes (split params count their slice only)."""
        from .. import dtypes

        total = 0
        for name, p in self.param_order:
            count = 1
            for d in self._shard_shape(name, p):
                count *= d
            total += count * dtypes.itemsize(p.dtype)
        return total


def export_module(module: Module, spec: ExportSpec) -> ExportedModule:
    """Build an IRModule from a module tree and a set of forward functions.

    Every exported function's signature is ``(user inputs..., params...)``;
    parameter order is the module's stable traversal order, identical
    across functions (so prefill/decode share one weight list).
    """
    named = module.named_parameters()
    bb = BlockBuilder()
    for fn_name, (inputs, forward) in spec.items():
        all_params: Dict[str, Annotation] = dict(inputs)
        for pname, param in named:
            key = f"p_{pname.replace('.', '_')}"
            if key in all_params:
                raise ValueError(f"parameter name collision: {key}")
            all_params[key] = TensorAnn(param.shape, param.dtype)
        with bb.function(fn_name, all_params) as frame:
            user_vars = frame.params[: len(inputs)]
            param_vars = frame.params[len(inputs):]
            for (pname, param), var in zip(named, param_vars):
                param.name = pname
                param._var = var
            try:
                with bb.dataflow():
                    result = forward(bb, *user_vars)
                    gv = bb.emit_output(result)
                bb.emit_func_output(gv)
            finally:
                for _, param in named:
                    param._var = None
    return ExportedModule(bb.get(), module, named)
