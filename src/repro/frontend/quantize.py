"""Group quantization: packed low-bit weights with a custom decode tensor
program (the paper's Fig. 9 workload and the §5.3 deployment enabler).

A :class:`QuantizedLinear` stores its weight as packed ``u32`` words plus
per-group ``f32``/``f16`` scales.  Its forward emits ``call_tir`` to a
*custom* decode tensor program (no graph-level operator exists for it)
followed by a matmul — exactly the situation cross-level fusion handles:
analysis feedback classifies the decode Injective, FuseOps groups it with
the matmul, and FuseTensorIR inlines the decode into the FMA so the f32
weight matrix never materializes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import ops, tir
from ..core import BlockBuilder, TensorAnn
from ..core.expr import Expr
from .nn import Module, Parameter


def decode_prim_func(k: int, n: int, bits: int, group_size: int,
                     dtype: str = "f32") -> tir.PrimFunc:
    """Tensor program decoding packed ``bits``-wide weights to (k, n).

    Packing layout: along the n axis, ``per_word = 32 // bits`` values per
    u32 word; scales are per (row, group) with ``group_size`` values per
    group.  Decoded value = (nibble - zero_point) * scale, zero_point =
    2^(bits-1) - 1 (the paper's Fig. 9 uses bits=4, zero point 7).
    """
    per_word = 32 // bits
    mask = (1 << bits) - 1
    zero_point = (1 << (bits - 1)) - 1
    words = (n + per_word - 1) // per_word
    groups = (n + group_size - 1) // group_size

    f = tir.TirBuilder(f"decode_q{bits}")
    data = f.arg("Wdata", (k, words), "u32")
    scale = f.arg("Wscale", (k, groups), dtype)
    w = f.out("W", (k, n), dtype)
    ki, ji = f.spatial(k, n)
    nibble = tir.cast(
        "i32", (data[ki, ji // per_word] >> tir.IndexValue((ji % per_word) * bits)) & mask
    )
    f.store(
        w, [ki, ji],
        tir.cast(dtype, nibble - zero_point) * scale[ki, ji // group_size],
    )
    return f.build()


def quantize_weight(weight: np.ndarray, bits: int, group_size: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Pack an fp weight matrix (k, n) into (u32 words, scales)."""
    k, n = weight.shape
    per_word = 32 // bits
    zero_point = (1 << (bits - 1)) - 1
    max_q = (1 << bits) - 1
    groups = (n + group_size - 1) // group_size
    words = (n + per_word - 1) // per_word

    scales = np.zeros((k, groups), dtype=np.float32)
    packed = np.zeros((k, words), dtype=np.uint32)
    for g in range(groups):
        block = weight[:, g * group_size:(g + 1) * group_size]
        amax = np.abs(block).max(axis=1)
        scales[:, g] = np.where(amax > 0, amax / zero_point, 1.0)
    for j in range(n):
        g = j // group_size
        q = np.round(weight[:, j] / scales[:, g]) + zero_point
        q = np.clip(q, 0, max_q).astype(np.uint32)
        packed[:, j // per_word] |= q << np.uint32((j % per_word) * bits)
    return packed, scales


def dequantize_weight(packed: np.ndarray, scales: np.ndarray, bits: int,
                      group_size: int, n: int) -> np.ndarray:
    """NumPy reference for the decode tensor program."""
    per_word = 32 // bits
    mask = (1 << bits) - 1
    zero_point = (1 << (bits - 1)) - 1
    k = packed.shape[0]
    out = np.zeros((k, n), dtype=np.float32)
    for j in range(n):
        nib = (packed[:, j // per_word] >> np.uint32((j % per_word) * bits)) & mask
        out[:, j] = (nib.astype(np.int32) - zero_point) * scales[:, j // group_size]
    return out


class QuantizedLinear(Module):
    """Linear layer with packed low-bit weights and on-the-fly decode."""

    def __init__(self, in_features: int, out_features: int, bits: int = 4,
                 group_size: int = 32, dtype: str = "f32"):
        per_word = 32 // bits
        self.in_features = in_features
        self.out_features = out_features
        self.bits = bits
        self.group_size = group_size
        self.dtype = dtype
        self.packed = Parameter(
            (in_features, (out_features + per_word - 1) // per_word), "u32"
        )
        self.scales = Parameter(
            (in_features, (out_features + group_size - 1) // group_size), dtype
        )
        self._decode_cache_key: Optional[str] = None

    def load_float_weight(self, weight: np.ndarray) -> None:
        from .. import dtypes

        packed, scales = quantize_weight(weight, self.bits, self.group_size)
        self.packed.data = packed
        self.scales.data = scales.astype(dtypes.to_numpy(self.scales.dtype))

    def initialize_quantized(self, rng: np.random.Generator, scale: float = 0.02):
        weight = (rng.standard_normal((self.in_features, self.out_features)) * scale)
        self.load_float_weight(weight.astype(np.float32))

    def forward(self, bb: BlockBuilder, x: Expr) -> Expr:
        prim = decode_prim_func(
            self.in_features, self.out_features, self.bits, self.group_size,
            self.dtype,
        )
        gvar = bb.add_func(prim, prim.name)
        w = bb.call_tir(
            gvar,
            [self.packed.var, self.scales.var],
            TensorAnn((self.in_features, self.out_features), self.dtype),
        )
        mm = ops.matmul(x, w)
        # The decode must fuse INTO this matmul (Fig. 9); dispatching it to
        # the vendor GEMM would force the decoded f16 weight to materialize.
        mm.attrs["no_library"] = True
        return bb.emit(mm)
