"""Baseline system simulators (paper §5.1 comparison set).

Each baseline is an execution *policy* over the shared operator traces and
device models:

* **HF eager** (Transformers + PyTorch eager): one kernel per op, a Python
  host overhead per op, library GEMMs, FlashAttention when the backend has
  it, composed attention (3 kernels) otherwise;
* **HF compile** (torch.compile): elementwise ops fused into neighbors,
  library GEMMs everywhere (no matvec specialization), *static KV cache*
  required — modeled as attention cost over the full context budget, and
  per-shape-bucket recompilation; unsupported for some models (the paper
  omits Qwen2);
* **vLLM**: paged attention (highly tuned), CUDA/ROCm only, small
  scheduler overhead per step, strongest at larger batch sizes;
* **llama.cpp**: hand-written kernels — excellent on Apple Metal, weaker
  CUDA kernels (the paper: "performs less effectively on NVIDIA GPUs"),
  and **CPU-only on Android** (no OpenCL kernels, Fig. 18), native 4-bit;
* whisper family (WhisperX, Faster-Whisper, whisper.cpp) reuse the same
  policies with encoder-decoder traces (§5.4).

The numbers produced are synthetic but mechanistic: they respond to the
same FLOP/byte/launch quantities the Relax VM meters, so who-wins/where
comparisons are driven by real structural differences (fusion, library
use, kernel counts, cache policy), not hard-coded outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..models.llama import LlamaConfig
from ..runtime.device import Device, S24_CPU
from .trace import OpSpec, decoder_step_ops, encoder_ops


@dataclass
class Policy:
    """How a system turns an op trace into kernels and time."""

    name: str
    host_overhead_per_op: float  # framework Python/C++ dispatch cost
    step_overhead: float  # per-forward scheduling cost
    gemm_efficiency: str  # "lib" | "gen" | explicit float via custom
    attention_kernels: int  # 1 = fused/flash, 3 = composed
    fuse_ewise: bool  # elementwise/norm ops folded into neighbors
    backends: tuple
    custom_gemm_eff: Optional[float] = None
    custom_attn_eff: Optional[float] = None
    supports_quant: bool = True
    cpu_fallback_backends: tuple = ()  # backends where only CPU is used


class BaselineSystem:
    def __init__(self, policy: Policy):
        self.policy = policy

    @property
    def name(self) -> str:
        return self.policy.name

    def supports(self, device: Device, cfg: Optional[LlamaConfig] = None) -> bool:
        p = self.policy
        return device.backend in p.backends or device.backend in p.cpu_fallback_backends

    def _effective_device(self, device: Device) -> Device:
        if device.backend in self.policy.cpu_fallback_backends:
            return S24_CPU  # hand-written CPU path (Fig. 18's llama.cpp)
        return device

    def _gemm_eff(self, device: Device) -> float:
        p = self.policy
        if p.custom_gemm_eff is not None:
            return p.custom_gemm_eff
        return device.lib_efficiency if p.gemm_efficiency == "lib" else device.gen_efficiency

    def _attn_eff(self, device: Device) -> float:
        if self.policy.custom_attn_eff is not None:
            return self.policy.custom_attn_eff
        return self._gemm_eff(device)

    def run_trace(self, ops: List[OpSpec], device: Device) -> float:
        """Time one forward step of the given op trace."""
        p = self.policy
        device = self._effective_device(device)
        time = p.step_overhead
        for op in ops:
            if p.fuse_ewise and op.kind in ("ewise", "norm", "embed"):
                # Folded into a neighboring kernel: bandwidth still paid,
                # launch and host overhead amortized away.
                time += device.kernel_time(
                    op.flops, op.bytes, device.gen_efficiency, include_launch=False
                )
                continue
            kernels = p.attention_kernels if op.kind == "attention" else 1
            eff = self._attn_eff(device) if op.kind == "attention" else (
                self._gemm_eff(device) if op.kind == "gemm" else device.gen_efficiency
            )
            for _ in range(kernels):
                time += device.kernel_time(
                    op.flops / kernels, op.bytes / kernels, eff, include_launch=True
                )
                time += p.host_overhead_per_op
        return time

    # -- LLM workloads ----------------------------------------------------------

    def decode_step_time(self, cfg: LlamaConfig, device: Device, batch: int,
                         context: int) -> float:
        ops = decoder_step_ops(cfg, batch, s=1, past=context)
        return self.run_trace(ops, device)

    def prefill_time(self, cfg: LlamaConfig, device: Device, batch: int,
                     seq: int) -> float:
        ops = decoder_step_ops(cfg, batch, s=seq, past=0)
        return self.run_trace(ops, device)

    def encode_time(self, cfg: LlamaConfig, device: Device, batch: int,
                    seq: int) -> float:
        return self.run_trace(encoder_ops(cfg, batch, seq), device)


class HFCompileSystem(BaselineSystem):
    """torch.compile: static KV cache — attention runs over the full
    context budget regardless of the live length (the paper: "it still
    requires static KV cache")."""

    def decode_step_time(self, cfg, device, batch, context):
        # Static cache sized to the next power-of-two bucket: attention and
        # cache traffic cost the bucket length, and crossing a bucket
        # boundary would recompile (modeled as steady state here).
        bucket = 512
        while bucket < context + 1:
            bucket *= 2
        bucket = min(bucket, cfg.context_length)
        ops = decoder_step_ops(cfg, batch, s=1, past=bucket - 1)
        return self.run_trace(ops, device)


HF_EAGER = BaselineSystem(Policy(
    name="HF (eager)",
    host_overhead_per_op=0.0,  # device.framework_op_overhead applied below
    step_overhead=60e-6,
    gemm_efficiency="lib",
    attention_kernels=1,  # FlashAttention enabled when available (§5.1)
    fuse_ewise=False,
    backends=("cuda", "rocm", "metal"),
))

HF_COMPILE = HFCompileSystem(Policy(
    name="HF (compile)",
    host_overhead_per_op=1.5e-6,
    step_overhead=30e-6,
    gemm_efficiency="lib",
    attention_kernels=1,
    fuse_ewise=True,
    backends=("cuda", "rocm"),  # no Apple GPU support (paper §5.1)
))

VLLM = BaselineSystem(Policy(
    name="vLLM",
    host_overhead_per_op=2.0e-6,
    step_overhead=150e-6,  # scheduler / continuous batching bookkeeping
    gemm_efficiency="lib",
    attention_kernels=1,
    fuse_ewise=True,
    custom_attn_eff=0.90,  # paged attention kernels
    backends=("cuda", "rocm"),
))

LLAMA_CPP = BaselineSystem(Policy(
    name="llama.cpp",
    host_overhead_per_op=0.5e-6,
    step_overhead=15e-6,
    gemm_efficiency="gen",
    attention_kernels=2,
    fuse_ewise=True,
    # Hand-tuned Metal kernels; weaker CUDA kernels than cuBLAS.
    custom_gemm_eff=None,
    backends=("metal", "cuda", "vulkan", "cpu"),
    cpu_fallback_backends=("opencl",),  # Android: CPU only (Fig. 18)
))


class _LlamaCppSystem(BaselineSystem):
    """llama.cpp's kernel quality depends strongly on the backend."""

    _BACKEND_EFF = {"metal": 0.84, "cuda": 0.52, "vulkan": 0.60, "cpu": 0.70}

    def _gemm_eff(self, device: Device) -> float:
        return self._BACKEND_EFF.get(device.backend, 0.55)


LLAMA_CPP = _LlamaCppSystem(LLAMA_CPP.policy)


def hf_eager_overhead(device: Device) -> float:
    return device.framework_op_overhead


class _HFEagerSystem(BaselineSystem):
    """Eager mode pays the framework's per-op host overhead on every op."""

    def run_trace(self, ops, device):
        base = Policy(**{**self.policy.__dict__})
        base.host_overhead_per_op = self._effective_device(device).framework_op_overhead
        return BaselineSystem(base).run_trace(ops, device)


HF_EAGER = _HFEagerSystem(HF_EAGER.policy)

#: Whisper-family baselines (§5.4) reuse the LLM policies: WhisperX and
#: Faster-Whisper are CTranslate2-style optimized inference (compile-like),
#: whisper.cpp mirrors llama.cpp.
WHISPER_HF = HF_EAGER
WHISPER_X = BaselineSystem(Policy(
    name="WhisperX",
    host_overhead_per_op=2.0e-6,
    step_overhead=40e-6,
    gemm_efficiency="lib",
    attention_kernels=1,
    fuse_ewise=True,
    backends=("cuda", "rocm"),  # no Apple GPU support (paper Fig. 19)
))
FASTER_WHISPER = BaselineSystem(Policy(
    name="Faster Whisper",
    host_overhead_per_op=1.8e-6,
    step_overhead=45e-6,
    gemm_efficiency="lib",
    attention_kernels=1,
    fuse_ewise=True,
    backends=("cuda", "rocm"),
))
WHISPER_CPP = _LlamaCppSystem(Policy(
    name="whisper.cpp",
    host_overhead_per_op=0.5e-6,
    step_overhead=15e-6,
    gemm_efficiency="gen",
    attention_kernels=2,
    fuse_ewise=True,
    backends=("metal", "cuda", "vulkan", "cpu"),
))

ALL_LLM_BASELINES = [HF_EAGER, HF_COMPILE, VLLM, LLAMA_CPP]
