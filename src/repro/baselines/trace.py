"""Operator-level traces of transformer workloads.

Baseline systems (HF Transformers, vLLM, llama.cpp, ...) are modeled at the
*execution strategy* level (DESIGN.md §2): given a model configuration, the
functions here enumerate the operators one forward step performs, with
FLOP and byte counts; each baseline then applies its own policy (how many
kernels, what efficiency, what host overhead per op) on the shared device
model.  The Relax side of every comparison runs the real compiled VM, so
baselines and Relax meter on the same clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..models.llama import LlamaConfig


@dataclass
class OpSpec:
    """One logical operator in a forward step."""

    kind: str  # gemm | attention | norm | ewise | embed
    flops: float
    bytes: float


def _dtype_bytes(cfg: LlamaConfig) -> int:
    return 2 if cfg.dtype == "f16" else 4


def _weight_bytes(cfg: LlamaConfig, k: int, n: int) -> float:
    if cfg.quantize_bits is not None:
        return k * n * cfg.quantize_bits / 8 + k * (n / cfg.quantize_group) * 2
    return k * n * _dtype_bytes(cfg)


def _gemm(cfg: LlamaConfig, rows: int, k: int, n: int) -> OpSpec:
    act = _dtype_bytes(cfg)
    return OpSpec(
        "gemm",
        flops=2.0 * rows * k * n,
        bytes=_weight_bytes(cfg, k, n) + rows * (k + n) * act,
    )


def _ewise(cfg: LlamaConfig, elems: float, ops_per_elem: int = 2,
           kind: str = "ewise") -> OpSpec:
    act = _dtype_bytes(cfg)
    return OpSpec(kind, flops=ops_per_elem * elems, bytes=2 * elems * act)


def _attention_op(cfg: LlamaConfig, batch: int, s: int, m: int) -> OpSpec:
    act = _dtype_bytes(cfg)
    h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
    flops = 2.0 * batch * h * s * m * d * 2
    nbytes = batch * (s * h * d + 2 * m * kv * d + s * h * d) * act
    return OpSpec("attention", flops=flops, bytes=nbytes)


def decoder_step_ops(cfg: LlamaConfig, batch: int, s: int, past: int,
                     causal: bool = True) -> List[OpSpec]:
    """Operators of one decoder forward: ``s`` new tokens, ``past`` cached."""
    rows = batch * s
    hidden, inter = cfg.hidden_size, cfg.intermediate_size
    h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
    m = past + s
    act = _dtype_bytes(cfg)

    ops: List[OpSpec] = [
        OpSpec("embed", flops=0.0, bytes=rows * hidden * act)
    ]
    for _ in range(cfg.num_layers):
        ops.append(_ewise(cfg, rows * hidden, 4, "norm"))
        ops.append(_gemm(cfg, rows, hidden, h * d))  # q
        ops.append(_gemm(cfg, rows, hidden, kv * d))  # k
        ops.append(_gemm(cfg, rows, hidden, kv * d))  # v
        ops.append(_ewise(cfg, rows * h * d, 6))  # rope q
        ops.append(_ewise(cfg, rows * kv * d, 6))  # rope k
        ops.append(_ewise(cfg, batch * m * kv * d, 1))  # k append (copy)
        ops.append(_ewise(cfg, batch * m * kv * d, 1))  # v append (copy)
        ops.append(_attention_op(cfg, batch, s, m))
        ops.append(_gemm(cfg, rows, h * d, hidden))  # o proj
        ops.append(_ewise(cfg, rows * hidden, 1))  # residual add
        ops.append(_ewise(cfg, rows * hidden, 4, "norm"))
        if cfg.gated_mlp:
            ops.append(_gemm(cfg, rows, hidden, inter))  # gate
            ops.append(_gemm(cfg, rows, hidden, inter))  # up
            ops.append(_ewise(cfg, rows * inter, 4))  # act * up
        else:
            ops.append(_gemm(cfg, rows, hidden, inter))
            ops.append(_ewise(cfg, rows * inter, 4))
        ops.append(_gemm(cfg, rows, inter, hidden))  # down
        ops.append(_ewise(cfg, rows * hidden, 1))  # residual add
    ops.append(_ewise(cfg, rows * hidden, 4, "norm"))
    ops.append(_gemm(cfg, batch, hidden, cfg.vocab_size))  # lm head (last pos)
    return ops


def encoder_ops(cfg: LlamaConfig, batch: int, s: int) -> List[OpSpec]:
    """Operators of one non-causal encoder pass over ``s`` positions."""
    return decoder_step_ops(cfg, batch, s, past=0, causal=False)[:-1]


def llama_like(name: str, hidden: int, layers: int, heads: int, ffn: int,
               vocab: int, dtype: str = "f16") -> LlamaConfig:
    """Shim config so encoder/decoder traces cover Whisper/ViT stacks."""
    return LlamaConfig(
        name=name, hidden_size=hidden, intermediate_size=ffn,
        num_layers=layers, num_heads=heads, num_kv_heads=heads,
        vocab_size=vocab, norm="layer", act="gelu", gated_mlp=False,
        dtype=dtype,
    )


def cross_decoder_step_ops(cfg: LlamaConfig, batch: int, s: int, past: int,
                           cross_len: int) -> List[OpSpec]:
    """Decoder step with per-layer cross-attention over ``cross_len``
    precomputed encoder positions (Whisper-style)."""
    ops = decoder_step_ops(cfg, batch, s, past)
    rows = batch * s
    hidden = cfg.hidden_size
    for _ in range(cfg.num_layers):
        ops.append(_ewise(cfg, rows * hidden, 4, "norm"))
        ops.append(_gemm(cfg, rows, hidden, hidden))  # cross q proj
        ops.append(_attention_op(cfg, batch, s, cross_len))
        ops.append(_gemm(cfg, rows, hidden, hidden))  # cross out proj
        ops.append(_ewise(cfg, rows * hidden, 1))  # residual add
    return ops


def cross_kv_ops(cfg: LlamaConfig, batch: int, cross_len: int) -> List[OpSpec]:
    """Per-layer cross K/V projections of the encoder states (done once)."""
    rows = batch * cross_len
    return [
        _gemm(cfg, rows, cfg.hidden_size, cfg.hidden_size)
        for _ in range(2 * cfg.num_layers)
    ]


def weights_bytes(cfg: LlamaConfig) -> float:
    """Total parameter bytes (embedding fp + quantized/full projections)."""
    act = _dtype_bytes(cfg)
    hidden, inter = cfg.hidden_size, cfg.intermediate_size
    h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
    total = cfg.vocab_size * hidden * act  # embedding
    per_layer = (
        _weight_bytes(cfg, hidden, h * d)
        + 2 * _weight_bytes(cfg, hidden, kv * d)
        + _weight_bytes(cfg, h * d, hidden)
        + (2 if cfg.gated_mlp else 1) * _weight_bytes(cfg, hidden, inter)
        + _weight_bytes(cfg, inter, hidden)
        + 2 * hidden * act
    )
    total += cfg.num_layers * per_layer
    if not cfg.tie_embeddings:
        total += _weight_bytes(cfg, hidden, cfg.vocab_size)
    return total


def kv_cache_bytes(cfg: LlamaConfig, batch: int, length: int) -> float:
    act = _dtype_bytes(cfg)
    return 2.0 * batch * length * cfg.num_kv_heads * cfg.head_dim * act * cfg.num_layers
