"""Baseline system simulators for the paper's comparison set (§5)."""

from .systems import (
    ALL_LLM_BASELINES,
    FASTER_WHISPER,
    HF_COMPILE,
    HF_EAGER,
    LLAMA_CPP,
    VLLM,
    WHISPER_CPP,
    WHISPER_HF,
    WHISPER_X,
    BaselineSystem,
    Policy,
)
from .trace import (
    OpSpec,
    cross_decoder_step_ops,
    cross_kv_ops,
    decoder_step_ops,
    encoder_ops,
    kv_cache_bytes,
    llama_like,
    weights_bytes,
)

__all__ = [
    "ALL_LLM_BASELINES",
    "BaselineSystem",
    "FASTER_WHISPER",
    "HF_COMPILE",
    "HF_EAGER",
    "LLAMA_CPP",
    "OpSpec",
    "Policy",
    "VLLM",
    "WHISPER_CPP",
    "WHISPER_HF",
    "WHISPER_X",
    "cross_decoder_step_ops",
    "cross_kv_ops",
    "decoder_step_ops",
    "encoder_ops",
    "kv_cache_bytes",
    "llama_like",
    "weights_bytes",
]
