"""Disassembler for compiled executables.

Renders the §4.7 end state — "a sequence of virtual machine instructions,
each of which is a call into a generated or builtin function" — as text,
for debugging and for the examples.
"""

from __future__ import annotations

from typing import List

from . import vm as rvm


def _dim(spec: rvm.DimSpec) -> str:
    kind, payload = spec
    return str(payload) if kind == "const" else f"heap[{payload}]"


def _prov(instr: rvm.Instr) -> str:
    """Trailing provenance annotation: ``  ; from matmul@lv0+relu@lv1``."""
    chain = getattr(instr, "prov", ())
    return f"  ; from {'+'.join(chain)}" if chain else ""


def _instr_lines(instr: rvm.Instr, indent: int) -> List[str]:
    pad = "  " * indent
    if isinstance(instr, rvm.MatchShape):
        actions = ", ".join(
            f"d{d}{'->' if kind == 'store' else '=='}"
            f"{f'heap[{p}]' if kind != 'assert_const' else p}"
            for d, kind, p in instr.actions
        )
        extra = f" ndim={instr.ndim}" if instr.ndim is not None else ""
        dtype = f" dtype={instr.dtype}" if instr.dtype else ""
        return [f"{pad}match_shape r{instr.reg} [{actions}]{extra}{dtype}"]
    if isinstance(instr, rvm.ComputeShape):
        env = ", ".join(f"{v.name}=heap[{s}]" for v, s in instr.var_slots)
        return [f"{pad}heap[{instr.dst_slot}] = eval({instr.expr}; {env})"]
    if isinstance(instr, rvm.MakeShape):
        dims = ", ".join(_dim(d) for d in instr.dims)
        return [f"{pad}r{instr.dst} = make_shape({dims})"]
    if isinstance(instr, rvm.LoadConst):
        return [f"{pad}r{instr.dst} = const[{instr.const_idx}]"]
    if isinstance(instr, rvm.AllocStorage):
        esc = " escapes" if instr.escapes else ""
        return [f"{pad}r{instr.dst} = alloc_storage({_dim(instr.size)}B){esc}{_prov(instr)}"]
    if isinstance(instr, rvm.AllocTensor):
        dims = ", ".join(_dim(d) for d in instr.dims)
        src = f" from r{instr.storage}" if instr.storage is not None else " (pool)"
        esc = " escapes" if instr.escapes else ""
        return [f"{pad}r{instr.dst} = alloc_tensor(({dims}), {instr.dtype}){src}{esc}{_prov(instr)}"]
    if isinstance(instr, rvm.KillTensor):
        return [f"{pad}kill r{instr.reg}{_prov(instr)}"]
    if isinstance(instr, rvm.CallTir):
        args = ", ".join(f"r{a}" for a in instr.args)
        outs = ", ".join(f"r{o}" for o in instr.outs)
        syms = ""
        if instr.sym_args:
            syms = "; sym=[" + ", ".join(_dim(d) for d in instr.sym_args) + "]"
        return [f"{pad}call_tir @{instr.func}({args} -> {outs}{syms}){_prov(instr)}"]
    if isinstance(instr, rvm.CallLib):
        args = ", ".join(f"r{a}" for a in instr.args)
        outs = ", ".join(f"r{o}" for o in instr.outs)
        return [f"{pad}call_lib \"{instr.name}\"({args} -> {outs}){_prov(instr)}"]
    if isinstance(instr, rvm.CallBuiltin):
        args = ", ".join(f"r{a}" for a in instr.args)
        dst = f"r{instr.dst} = " if instr.dst is not None else ""
        return [f"{pad}{dst}builtin \"{instr.name}\"({args}){_prov(instr)}"]
    if isinstance(instr, rvm.CallFunc):
        args = ", ".join(f"r{a}" for a in instr.args)
        return [f"{pad}r{instr.dst} = call @{instr.func}({args})"]
    if isinstance(instr, rvm.MakeTupleI):
        srcs = ", ".join(f"r{s}" for s in instr.srcs)
        return [f"{pad}r{instr.dst} = tuple({srcs})"]
    if isinstance(instr, rvm.GetItemI):
        return [f"{pad}r{instr.dst} = r{instr.src}[{instr.index}]"]
    if isinstance(instr, rvm.If):
        lines = [f"{pad}if r{instr.cond}:"]
        for sub in instr.then_body:
            lines.extend(_instr_lines(sub, indent + 1))
        lines.append(f"{pad}  -> r{instr.dst} = r{instr.then_out}")
        lines.append(f"{pad}else:")
        for sub in instr.else_body:
            lines.extend(_instr_lines(sub, indent + 1))
        lines.append(f"{pad}  -> r{instr.dst} = r{instr.else_out}")
        return lines
    if isinstance(instr, rvm.Ret):
        return [f"{pad}ret r{instr.reg}"]
    return [f"{pad}<{type(instr).__name__}>"]  # pragma: no cover


def disassemble_function(func: rvm.VMFunction) -> str:
    header = (
        f"func @{func.name}({', '.join(func.params)}) "
        f"regs={func.num_regs} shape_heap={func.num_slots}"
    )
    if func.attrs:
        header += f" attrs={sorted(func.attrs)}"
    lines = [header]
    for instr in func.body:
        lines.extend(_instr_lines(instr, 1))
    return "\n".join(lines)


def disassemble(exe: rvm.Executable) -> str:
    """Full textual form of an executable (VM functions + kernel list)."""
    chunks = [disassemble_function(f) for _, f in sorted(exe.functions.items())]
    if exe.tir_funcs:
        kernels = ", ".join(sorted(exe.tir_funcs))
        chunks.append(f"; tensor programs: {kernels}")
    if exe.constants:
        chunks.append(f"; constants: {len(exe.constants)}")
    return "\n\n".join(chunks)
