"""External operator library registry (paper §3.3, §4.6).

``call_dps_library`` callees resolve here: each entry provides a NumPy
implementation (concrete mode), a cost estimator (both modes), and the set
of backends that actually ship the library — dispatch passes consult the
availability so that e.g. cuBLAS lowering only happens on CUDA devices
(the paper's platform-specific partial lowering).

The registry is extensible at runtime, mirroring "these functions are
supplied by a registry and linked to the final runnable module".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import dtypes


class LibraryKernel:
    """One external routine in destination-passing style."""

    def __init__(
        self,
        name: str,
        compute: Callable[..., None],
        cost: Callable[[Sequence, Sequence], tuple],
        backends: Sequence[str],
        efficiency: str = "lib",
        select_efficiency: Optional[Callable[[Sequence, Sequence], str]] = None,
    ):
        self.name = name
        self.compute = compute  # compute(inputs: [np.ndarray], outputs: [np.ndarray])
        self.cost = cost  # cost(in_shapes, out_shapes) -> (flops, bytes)
        self.backends = tuple(backends)
        self.efficiency = efficiency  # "lib" | "gen" | "gen_matvec"
        self._select = select_efficiency

    def efficiency_class(self, in_sd, out_sd) -> str:
        """Efficiency class for one call (may depend on runtime shapes)."""
        if self._select is not None:
            return self._select(in_sd, out_sd)
        return self.efficiency


class LibraryRegistry:
    """Name -> kernel table; one global default instance."""

    def __init__(self):
        self._kernels: Dict[str, LibraryKernel] = {}

    def register(self, kernel: LibraryKernel, override: bool = False) -> LibraryKernel:
        if kernel.name in self._kernels and not override:
            raise ValueError(f"library function {kernel.name!r} already registered")
        self._kernels[kernel.name] = kernel
        return kernel

    def get(self, name: str) -> LibraryKernel:
        if name not in self._kernels:
            raise KeyError(f"unknown library function {name!r}")
        return self._kernels[name]

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def available(self, name: str, backend: str) -> bool:
        return name in self._kernels and backend in self._kernels[name].backends

    def names(self) -> List[str]:
        return sorted(self._kernels)


REGISTRY = LibraryRegistry()

_GPU_LIB_BACKENDS = ("cuda", "rocm", "metal")


def _bytes_of(shapes_dtypes) -> int:
    total = 0
    for shape, dtype in shapes_dtypes:
        elems = 1
        for d in shape:
            elems *= d
        total += elems * dtypes.itemsize(dtype)
    return total


def _matmul_cost(in_sd, out_sd):
    (a_shape, _), (b_shape, _) = in_sd[0], in_sd[1]
    n = b_shape[-1]
    k = a_shape[-1]
    rows = 1
    for d in out_sd[0][0][:-1]:
        rows *= d
    flops = 2 * rows * n * k
    return flops, _bytes_of(in_sd) + _bytes_of(out_sd)


def _matmul_compute(inputs, outputs):
    a, b = inputs[0], inputs[1]
    out_dtype = outputs[0].dtype
    outputs[0][...] = (a.astype(np.float64) @ b.astype(np.float64)).astype(out_dtype)


def _matmul_select_efficiency(in_sd, out_sd) -> str:
    # The compiled module links both the vendor GEMM and the compiler's
    # matrix-vector specialization and dispatches on the runtime symbolic
    # shape (§5.1: generated matvec kernels at batch size 1, libraries for
    # other batch sizes).  rows == 1 selects the generated matvec.
    rows = 1
    for d in out_sd[0][0][:-1]:
        rows *= d
    return "gen_matvec" if rows == 1 else "lib"


#: Vendor GEMM (cuBLAS / hipBLASLt / MPS, depending on the device backend).
REGISTRY.register(
    LibraryKernel(
        "cublas.matmul", _matmul_compute, _matmul_cost, _GPU_LIB_BACKENDS,
        select_efficiency=_matmul_select_efficiency,
    )
)


def _matmul_nt_cost(in_sd, out_sd):
    (a_shape, _), (b_shape, _) = in_sd[0], in_sd[1]
    n = b_shape[-2]
    k = a_shape[-1]
    rows = 1
    for d in out_sd[0][0][:-1]:
        rows *= d
    return 2 * rows * n * k, _bytes_of(in_sd) + _bytes_of(out_sd)


def _matmul_nt_compute(inputs, outputs):
    a, b = inputs[0], inputs[1]
    out_dtype = outputs[0].dtype
    bt = np.swapaxes(b, -1, -2)
    outputs[0][...] = (a.astype(np.float64) @ bt.astype(np.float64)).astype(out_dtype)


REGISTRY.register(
    LibraryKernel(
        "cublas.matmul_nt", _matmul_nt_compute, _matmul_nt_cost,
        _GPU_LIB_BACKENDS, select_efficiency=_matmul_select_efficiency,
    )
)


def _ewise_cost_factory(ops_per_elem: int):
    def cost(in_sd, out_sd):
        elems = 1
        for d in out_sd[0][0]:
            elems *= d
        return ops_per_elem * elems, _bytes_of(in_sd) + _bytes_of(out_sd)

    return cost


def _rms_norm_compute(inputs, outputs):
    x, w = inputs[0], inputs[1]
    xf = x.astype(np.float64)
    denom = np.sqrt((xf**2).mean(axis=-1, keepdims=True) + 1e-5)
    outputs[0][...] = (xf / denom * w.astype(np.float64)).astype(x.dtype)


REGISTRY.register(
    LibraryKernel(
        "cutlass.rms_norm", _rms_norm_compute, _ewise_cost_factory(4), _GPU_LIB_BACKENDS
    )
)


def _softmax_compute(inputs, outputs):
    x = inputs[0].astype(np.float64)
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    outputs[0][...] = (e / e.sum(axis=-1, keepdims=True)).astype(inputs[0].dtype)


REGISTRY.register(
    LibraryKernel(
        "cudnn.softmax", _softmax_compute, _ewise_cost_factory(5), _GPU_LIB_BACKENDS
    )
)


def _attention_cost(in_sd, out_sd):
    (q_shape, _) = in_sd[0]
    (k_shape, _) = in_sd[1]
    b, s, h, d = q_shape
    m = k_shape[1]
    flops = 2 * b * h * s * m * d * 2  # QK^T and PV
    return flops, _bytes_of(in_sd) + _bytes_of(out_sd)


def _attention_compute(inputs, outputs):
    # Fused scaled-dot-product attention over (b, s, h, d) layout with
    # (b, m, h_kv, d) keys/values and GQA head sharing.
    q, k, v = (x.astype(np.float64) for x in inputs[:3])
    b, s, h, d = q.shape
    m, h_kv = k.shape[1], k.shape[2]
    group = h // h_kv
    scale = 1.0 / np.sqrt(d)
    out = np.zeros_like(q)
    for head in range(h):
        kv_head = head // group
        scores = q[:, :, head, :] @ k[:, :, kv_head, :].transpose(0, 2, 1) * scale
        if s > 1:
            # Replace (not add) at masked positions, matching the generated
            # kernel: on a fully-masked row (s > m) additive masking would
            # cancel in the softmax and leak the unmasked distribution.
            allowed = (
                np.arange(m)[None, :] - np.arange(s)[:, None] <= m - s
            )
            scores = np.where(allowed[None, :, :], scores, -1e9)
        e = np.exp(scores - scores.max(axis=-1, keepdims=True))
        probs = e / e.sum(axis=-1, keepdims=True)
        out[:, :, head, :] = probs @ v[:, :, kv_head, :]
    outputs[0][...] = out.astype(inputs[0].dtype)


#: FlashAttention-style fused attention (available on CUDA/ROCm only, as in
#: the paper's baselines).
REGISTRY.register(
    LibraryKernel(
        "flashinfer.attention", _attention_compute, _attention_cost, ("cuda", "rocm")
    )
)


def _paged_attention_cost(in_sd, out_sd):
    (q_shape, _) = in_sd[0]
    (kp_shape, kp_dtype) = in_sd[1]
    (bt_shape, _) = in_sd[3]
    b, s, h, d = q_shape
    page, h_kv = kp_shape[1], kp_shape[2]
    w = bt_shape[1]
    ctx = w * page + s
    flops = 2 * b * h * s * ctx * d * 2  # QK^T and PV over paged + current
    # Traffic counts only the pages the block tables actually reference
    # (b*w of them, for K and V), not the whole pool the pages args span.
    touched = 2 * b * w * page * h_kv * d * dtypes.itemsize(kp_dtype)
    light = _bytes_of(
        [in_sd[0], in_sd[3], in_sd[4], in_sd[5], in_sd[6]]
    ) + _bytes_of(out_sd)
    return flops, light + touched


def _paged_attention_compute(inputs, outputs):
    # Decode-style attention over a paged KV pool: gather each sequence's
    # pages through its block table, mask padding slots by the true length,
    # and attend the current query block causally (see repro.ops.paged).
    q, kp, vp = (x.astype(np.float64) for x in inputs[:3])
    table = inputs[3].astype(np.int64)
    lengths = inputs[4].astype(np.int64)
    kc, vc = (x.astype(np.float64) for x in inputs[5:7])
    b, s, h, d = q.shape
    page, h_kv = kp.shape[1], kp.shape[2]
    w = table.shape[1]
    group = h // h_kv
    scale = 1.0 / np.sqrt(d)
    causal = np.arange(s)[None, :] <= np.arange(s)[:, None]
    out = np.zeros_like(q)
    for i in range(b):
        k_past = kp[table[i]].reshape(w * page, h_kv, d)
        v_past = vp[table[i]].reshape(w * page, h_kv, d)
        valid = np.arange(w * page) < lengths[i]
        for head in range(h):
            g = head // group
            scores_p = q[i, :, head, :] @ k_past[:, g, :].T * scale
            scores_p = np.where(valid[None, :], scores_p, -1e9)
            scores_c = q[i, :, head, :] @ kc[i, :, g, :].T * scale
            scores_c = np.where(causal, scores_c, -1e9)
            scores = np.concatenate([scores_p, scores_c], axis=1)
            e = np.exp(scores - scores.max(axis=-1, keepdims=True))
            probs = e / e.sum(axis=-1, keepdims=True)
            values = np.concatenate([v_past[:, g, :], vc[i, :, g, :]], axis=0)
            out[i, :, head, :] = probs @ values
    outputs[0][...] = out.astype(inputs[0].dtype)


#: Paged (block-table) attention for continuous-batching decode; like the
#: dense FlashAttention entry, only CUDA/ROCm ship it.
REGISTRY.register(
    LibraryKernel(
        "flashinfer.paged_attention", _paged_attention_compute,
        _paged_attention_cost, ("cuda", "rocm"),
    )
)


def _paged_prefill_cost(in_sd, out_sd):
    (q_shape, _) = in_sd[0]
    (kp_shape, kp_dtype) = in_sd[1]
    (past_shape, _) = in_sd[4]
    b, s, h, d = q_shape
    page, h_kv = kp_shape[1], kp_shape[2]
    m = past_shape[0]
    ctx = m + s
    flops = 2 * b * h * s * ctx * d * 2  # QK^T and PV over cached + current
    # Traffic counts only the pages holding the m cached tokens (for K and
    # V), not the whole pool nor the table's padded width.
    touched = 2 * b * (-(-m // page)) * page * h_kv * d * dtypes.itemsize(
        kp_dtype
    )
    light = _bytes_of(
        [in_sd[0], in_sd[3], in_sd[4], in_sd[5], in_sd[6]]
    ) + _bytes_of(out_sd)
    return flops, light + touched


def _paged_prefill_compute(inputs, outputs):
    # Chunked prefill over the paged pool: gather each sequence's m cached
    # positions into a contiguous (b, m + s, h_kv, d) key/value view, then
    # run the *dense* fused-attention kernel on it — literally the same
    # code path, so the result is bit-identical to dense prefill over the
    # concatenated cache (the acceptance contract of repro.ops.paged's
    # paged_prefill).
    q = inputs[0]
    kp, vp = inputs[1], inputs[2]
    table = inputs[3].astype(np.int64)
    m = inputs[4].shape[0]
    kc, vc = inputs[5], inputs[6]
    b, s = q.shape[:2]
    page, h_kv, d = kp.shape[1], kp.shape[2], kp.shape[3]
    nb = -(-m // page)
    k_full = np.empty((b, m + s, h_kv, d), dtype=kc.dtype)
    v_full = np.empty((b, m + s, h_kv, d), dtype=vc.dtype)
    for i in range(b):
        if nb:
            k_full[i, :m] = kp[table[i, :nb]].reshape(nb * page, h_kv, d)[:m]
            v_full[i, :m] = vp[table[i, :nb]].reshape(nb * page, h_kv, d)[:m]
        k_full[i, m:] = kc[i]
        v_full[i, m:] = vc[i]
    _attention_compute([q, k_full, v_full], outputs)


#: Paged prefill: the chunked-prefill companion to paged_attention.
REGISTRY.register(
    LibraryKernel(
        "flashinfer.paged_prefill", _paged_prefill_compute,
        _paged_prefill_cost, ("cuda", "rocm"),
    )
)


def _paged_verify_cost(in_sd, out_sd):
    (q_shape, _) = in_sd[0]
    (kp_shape, kp_dtype) = in_sd[1]
    (bt_shape, _) = in_sd[3]
    b, s, h, d = q_shape
    page, h_kv = kp_shape[1], kp_shape[2]
    w = bt_shape[1]
    ctx = w * page + s
    flops = 2 * b * h * s * ctx * d * 2  # QK^T and PV over paged + current
    # Same traffic model as paged_attention: only the referenced pages
    # move, so verifying s speculative tokens re-reads the same cached
    # K/V a single-token decode would — that is the speculative win the
    # analytical clock captures.
    touched = 2 * b * w * page * h_kv * d * dtypes.itemsize(kp_dtype)
    light = _bytes_of(
        [in_sd[0], in_sd[3], in_sd[4], in_sd[5], in_sd[6], in_sd[7]]
    ) + _bytes_of(out_sd)
    return flops, light + touched


def _paged_verify_compute(inputs, outputs):
    # Ragged multi-token paged decode: like paged_attention's compute, but
    # the current-block mask is causal over each sequence's own speculative
    # width spec_lens[i] with the self position always attendable (see
    # repro.ops.paged's paged_verify).
    q, kp, vp = (x.astype(np.float64) for x in inputs[:3])
    table = inputs[3].astype(np.int64)
    lengths = inputs[4].astype(np.int64)
    spec_lens = inputs[5].astype(np.int64)
    kc, vc = (x.astype(np.float64) for x in inputs[6:8])
    b, s, h, d = q.shape
    page, h_kv = kp.shape[1], kp.shape[2]
    w = table.shape[1]
    group = h // h_kv
    scale = 1.0 / np.sqrt(d)
    causal = np.arange(s)[None, :] <= np.arange(s)[:, None]
    self_pos = np.eye(s, dtype=bool)
    out = np.zeros_like(q)
    for i in range(b):
        k_past = kp[table[i]].reshape(w * page, h_kv, d)
        v_past = vp[table[i]].reshape(w * page, h_kv, d)
        valid = np.arange(w * page) < lengths[i]
        in_spec = np.arange(s)[None, :] < spec_lens[i]
        cur_mask = causal & (in_spec | self_pos)
        for head in range(h):
            g = head // group
            scores_p = q[i, :, head, :] @ k_past[:, g, :].T * scale
            scores_p = np.where(valid[None, :], scores_p, -1e9)
            scores_c = q[i, :, head, :] @ kc[i, :, g, :].T * scale
            scores_c = np.where(cur_mask, scores_c, -1e9)
            scores = np.concatenate([scores_p, scores_c], axis=1)
            e = np.exp(scores - scores.max(axis=-1, keepdims=True))
            probs = e / e.sum(axis=-1, keepdims=True)
            values = np.concatenate([v_past[:, g, :], vc[i, :, g, :]], axis=0)
            out[i, :, head, :] = probs @ values
    outputs[0][...] = out.astype(inputs[0].dtype)


#: Speculative-verify attention: the ragged multi-token sibling of
#: paged_attention, same CUDA/ROCm-only availability.
REGISTRY.register(
    LibraryKernel(
        "flashinfer.paged_verify", _paged_verify_compute,
        _paged_verify_cost, ("cuda", "rocm"),
    )
)


def _unique_compute(inputs, outputs):  # pragma: no cover - handled by VM builtin
    raise RuntimeError("vm.builtin.unique is served by the VM, not the registry")


def register_custom(
    name: str,
    compute: Callable,
    cost: Callable,
    backends: Sequence[str] = _GPU_LIB_BACKENDS,
    override: bool = False,
) -> LibraryKernel:
    """User-facing registration hook ('Relax also allows users to register
    patterns for customizability', §4.6)."""
    return REGISTRY.register(LibraryKernel(name, compute, cost, backends), override)
