"""Analytical device models.

The paper evaluates on physical GPUs (RTX 4090, Radeon 7900 XTX, M2 Ultra),
phones, SBCs and WebGPU.  None of that hardware is available here, so each
device is modeled with a roofline-style clock (documented in DESIGN.md §2):

    kernel_time = launch_overhead
                + max(flops / (peak_flops * eff), bytes / (bandwidth * eff))

Every optimization the paper measures changes what this model observes —
fusion reduces launches and global-memory bytes, library dispatch raises
the efficiency factor on heavy GEMMs, CUDA Graph amortizes launch overhead,
memory planning changes allocation totals — so comparisons keep the paper's
*shape* even though the absolute clock is synthetic.

Efficiency factors encode the paper's observations:

* ``lib_efficiency`` > ``gen_efficiency`` for large matmuls (why partial
  library lowering wins at big batch sizes, Fig. 17);
* ``gen_matvec_efficiency`` > ``lib_efficiency`` at batch 1 (why Relax's
  compiler-generated matrix-vector kernels win there, §5.1 / Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class Device:
    """A modeled execution target."""

    name: str
    backend: str  # cuda | rocm | metal | opencl | vulkan | webgpu | cpu
    peak_flops: float  # FLOP/s (fp16 tensor-ish rate)
    mem_bandwidth: float  # bytes/s
    vram_bytes: int
    kernel_launch_overhead: float  # seconds per kernel launch
    graph_launch_overhead: float  # seconds per captured-graph replay
    framework_op_overhead: float  # per-op host overhead of eager frameworks
    gen_efficiency: float = 0.60  # compiler-generated kernels (general)
    gen_gemm_efficiency: float = 0.55  # analysis-scheduled GEMM (no autotuning)
    lib_efficiency: float = 0.90  # vendor library kernels (cuBLAS et al.)
    gen_matvec_efficiency: float = 0.92  # specialized batch-1 matvec codegen
    has_vendor_library: bool = True
    alloc_overhead: float = 2e-6  # runtime allocator cost per allocation
    #: Per-node device-side dispatch cost inside a captured graph; fusion
    #: keeps paying off under CUDA Graph because fewer nodes replay.
    graph_kernel_overhead: float = 0.15e-6

    def kernel_roofline(self, flops: float, bytes_moved: float,
                        efficiency: float) -> float:
        """Device-side kernel duration: the roofline max, without launch."""
        compute = flops / (self.peak_flops * efficiency)
        # Achieved bandwidth tracks kernel quality with a small bonus
        # (memory streaming is easier than peak math), capped below 1.
        memory = bytes_moved / (self.mem_bandwidth * min(0.97, efficiency + 0.08))
        return max(compute, memory)

    def kernel_time(self, flops: float, bytes_moved: float,
                    efficiency: float, include_launch: bool = True) -> float:
        time = self.kernel_roofline(flops, bytes_moved, efficiency)
        if include_launch:
            time += self.kernel_launch_overhead
        return time

    def with_overrides(self, **kwargs) -> "Device":
        return replace(self, **kwargs)


def _ghz(x: float) -> float:
    return x


# -- the paper's evaluation devices (§5.1, §5.3, §5.4) --------------------------

RTX_4090 = Device(
    name="NVIDIA RTX 4090",
    backend="cuda",
    peak_flops=165e12,  # fp16 w/ fp32 accumulate, non-sparsity
    mem_bandwidth=1008e9,
    vram_bytes=24 << 30,
    kernel_launch_overhead=0.7e-6,
    graph_launch_overhead=3.0e-6,
    framework_op_overhead=9.0e-6,
)

RADEON_7900XTX = Device(
    name="AMD Radeon 7900 XTX",
    backend="rocm",
    peak_flops=122e12,
    mem_bandwidth=960e9,
    vram_bytes=24 << 30,
    kernel_launch_overhead=1.0e-6,
    graph_launch_overhead=4.0e-6,
    framework_op_overhead=11.0e-6,
    lib_efficiency=0.80,  # rocBLAS tuning gap vs cuBLAS
)

M2_ULTRA = Device(
    name="Apple M2 Ultra",
    backend="metal",
    peak_flops=54e12,
    mem_bandwidth=800e9,
    vram_bytes=96 << 30,  # unified memory budget for GPU use
    kernel_launch_overhead=1.5e-6,
    graph_launch_overhead=5.0e-6,
    framework_op_overhead=14.0e-6,
    lib_efficiency=0.84,  # MPS
    gen_matvec_efficiency=0.90,
)

IPHONE_14_PRO = Device(
    name="iPhone 14 Pro (A16, Metal)",
    backend="metal",
    peak_flops=2.0e12,
    mem_bandwidth=51e9,
    vram_bytes=4 << 30,
    kernel_launch_overhead=15e-6,
    graph_launch_overhead=18e-6,
    framework_op_overhead=25e-6,
    has_vendor_library=False,
    gen_efficiency=0.35,
    gen_gemm_efficiency=0.30,
    gen_matvec_efficiency=0.45,
)

SAMSUNG_S23 = Device(
    name="Samsung S23 (Adreno 740, OpenCL)",
    backend="opencl",
    peak_flops=3.4e12,
    mem_bandwidth=67e9,
    vram_bytes=6 << 30,
    kernel_launch_overhead=20e-6,
    graph_launch_overhead=24e-6,
    framework_op_overhead=30e-6,
    has_vendor_library=False,
    gen_efficiency=0.40,
    gen_gemm_efficiency=0.32,
    gen_matvec_efficiency=0.55,
)

SAMSUNG_S24 = Device(
    name="Samsung S24 (Adreno 750, OpenCL)",
    backend="opencl",
    peak_flops=4.6e12,
    mem_bandwidth=77e9,
    vram_bytes=6 << 30,
    kernel_launch_overhead=18e-6,
    graph_launch_overhead=22e-6,
    framework_op_overhead=28e-6,
    has_vendor_library=False,
    gen_efficiency=0.40,
    gen_gemm_efficiency=0.32,
    gen_matvec_efficiency=0.55,
)

#: CPU of the Samsung S24 — what llama.cpp falls back to without GPU kernels
#: for Android (Fig. 18's comparison).
S24_CPU = Device(
    name="Samsung S24 (CPU)",
    backend="cpu",
    peak_flops=0.55e12,
    mem_bandwidth=34e9,
    vram_bytes=6 << 30,
    kernel_launch_overhead=0.3e-6,
    graph_launch_overhead=0.3e-6,
    framework_op_overhead=1.0e-6,
    has_vendor_library=False,
)

ORANGE_PI_5 = Device(
    name="Orange Pi 5 (Mali-G610, OpenCL)",
    backend="opencl",
    peak_flops=1.0e12,
    mem_bandwidth=19e9,
    vram_bytes=8 << 30,
    kernel_launch_overhead=30e-6,
    graph_launch_overhead=35e-6,
    framework_op_overhead=45e-6,
    has_vendor_library=False,
    gen_efficiency=0.35,
    gen_gemm_efficiency=0.28,
    gen_matvec_efficiency=0.45,
)

STEAM_DECK = Device(
    name="Steam Deck (AMD APU, Vulkan)",
    backend="vulkan",
    peak_flops=3.2e12,
    mem_bandwidth=88e9,
    vram_bytes=12 << 30,
    kernel_launch_overhead=10e-6,
    graph_launch_overhead=12e-6,
    framework_op_overhead=18e-6,
    has_vendor_library=False,
    gen_efficiency=0.50,
    gen_gemm_efficiency=0.40,
    gen_matvec_efficiency=0.70,
)

JETSON_ORIN = Device(
    name="NVIDIA Jetson Orin (CUDA)",
    backend="cuda",
    peak_flops=10.6e12,
    mem_bandwidth=205e9,
    vram_bytes=32 << 30,
    kernel_launch_overhead=2.0e-6,
    graph_launch_overhead=6e-6,
    framework_op_overhead=15e-6,
    gen_efficiency=0.45,
    gen_gemm_efficiency=0.38,
    gen_matvec_efficiency=0.50,
)

WEBGPU_M3_MAX = Device(
    name="WebGPU on Apple M3 Max",
    backend="webgpu",
    peak_flops=28e12,
    mem_bandwidth=400e9,
    vram_bytes=32 << 30,
    kernel_launch_overhead=14e-6,
    graph_launch_overhead=16e-6,
    framework_op_overhead=22e-6,
    has_vendor_library=False,
    gen_efficiency=0.50,
    gen_gemm_efficiency=0.40,
    gen_matvec_efficiency=0.65,
)

#: A tiny idealized device used by unit tests (fast, deterministic numbers).
TEST_DEVICE = Device(
    name="test-device",
    backend="cuda",
    peak_flops=1e12,
    mem_bandwidth=1e11,
    vram_bytes=1 << 30,
    kernel_launch_overhead=1e-6,
    graph_launch_overhead=2e-6,
    framework_op_overhead=5e-6,
)

ALL_DEVICES: Dict[str, Device] = {
    dev.name: dev
    for dev in [
        RTX_4090,
        RADEON_7900XTX,
        M2_ULTRA,
        IPHONE_14_PRO,
        SAMSUNG_S23,
        SAMSUNG_S24,
        S24_CPU,
        ORANGE_PI_5,
        STEAM_DECK,
        JETSON_ORIN,
        WEBGPU_M3_MAX,
        TEST_DEVICE,
    ]
}
