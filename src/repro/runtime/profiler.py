"""Execution statistics and memory accounting.

The VM reports through these classes exactly the quantities the paper's
evaluation measures: simulated wall time (Figs. 14–20), kernel/graph
launch counts (Fig. 17's CUDA Graph ablation), and allocated activation
memory (Table 2).

Two allocation modes mirror §5.2's memory study:

* **planned** — storages come from `AllocStorage` instructions emitted by
  static memory planning; each is allocated once, up front;
* **pooled** — without planning, tensors allocate through a
  :class:`RuntimePool` that recycles *exact-size* free blocks, so every
  new dynamic shape triggers a fresh allocation (the unpredictable growth
  the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional


@dataclass
class ExecutionStats:
    """Accumulated over one or more VM invocations."""

    time_s: float = 0.0
    kernel_launches: int = 0
    lib_calls: int = 0
    builtin_calls: int = 0
    graph_captures: int = 0
    graph_replays: int = 0
    replayed_kernels: int = 0
    allocations: int = 0
    allocated_bytes_total: int = 0
    escaping_bytes_total: int = 0
    current_bytes: int = 0
    peak_bytes: int = 0
    kernel_time_s: float = 0.0
    launch_overhead_s: float = 0.0
    #: Interconnect time charged by collective builtins (``ccl.*``); part
    #: of ``time_s``, broken out so benches can split compute vs comm.
    comm_time_s: float = 0.0

    def record_alloc(self, size: int, escaping: bool = False) -> None:
        self.allocations += 1
        self.allocated_bytes_total += size
        if escaping:
            self.escaping_bytes_total += size
        self.current_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    @property
    def transient_bytes_total(self) -> int:
        """Allocated bytes excluding escaping results (KV caches, logits)
        — the paper's Table 2 'activation memory' quantity."""
        return self.allocated_bytes_total - self.escaping_bytes_total

    def record_free(self, size: int) -> None:
        self.current_bytes -= size

    def copy(self) -> "ExecutionStats":
        """Immutable snapshot of the current counters.

        The supported way to meter a *window* of execution on a shared VM:
        take ``before = vm.stats.copy()`` at the window start and
        ``vm.stats.delta(before)`` at the end.  Unlike
        ``VirtualMachine.reset_stats()`` this never touches the runtime
        pool, so allocator recycling behaves exactly as in an unmetered
        run and per-window deltas sum to the end-to-end totals.
        """
        return replace(self)

    def delta(self, since: "ExecutionStats") -> "ExecutionStats":
        """Counters accrued after ``since`` (a prior :meth:`copy`).

        Additive fields subtract; ``peak_bytes`` is a high-water mark, not
        a rate, so the delta carries the absolute peak observed so far
        (merging deltas therefore reproduces the end-to-end peak).
        """
        return ExecutionStats(
            time_s=self.time_s - since.time_s,
            kernel_launches=self.kernel_launches - since.kernel_launches,
            lib_calls=self.lib_calls - since.lib_calls,
            builtin_calls=self.builtin_calls - since.builtin_calls,
            graph_captures=self.graph_captures - since.graph_captures,
            graph_replays=self.graph_replays - since.graph_replays,
            replayed_kernels=self.replayed_kernels - since.replayed_kernels,
            allocations=self.allocations - since.allocations,
            allocated_bytes_total=(
                self.allocated_bytes_total - since.allocated_bytes_total
            ),
            escaping_bytes_total=(
                self.escaping_bytes_total - since.escaping_bytes_total
            ),
            current_bytes=self.current_bytes - since.current_bytes,
            peak_bytes=self.peak_bytes,
            kernel_time_s=self.kernel_time_s - since.kernel_time_s,
            launch_overhead_s=self.launch_overhead_s - since.launch_overhead_s,
            comm_time_s=self.comm_time_s - since.comm_time_s,
        )

    @classmethod
    def merge_serial(cls, parts: "list[ExecutionStats]") -> "ExecutionStats":
        """Combine stats of work that ran *back-to-back on one clock*
        (e.g. the serving engine's per-model-family VMs within one
        iteration): every time field and counter sums, while
        ``peak_bytes`` — a high-water mark across distinct pools, not a
        rate — takes the max.  A single part is returned as-is (callers
        treat the result as read-only)."""
        if len(parts) == 1:
            return parts[0]
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    @classmethod
    def merge_parallel(cls, parts: "list[ExecutionStats]") -> "ExecutionStats":
        """Combine stats of work that ran *concurrently in lockstep*
        (e.g. SPMD mesh shards, data-parallel replicas on a shared
        clock): wall-time fields take the max over parts — nobody leaves
        the barrier before the slowest — event counters and byte totals
        sum, and ``peak_bytes`` stays the per-device high-water mark
        (each part has its own VRAM), the same conventions a multi-GPU
        profiler uses.  Returns a fresh snapshot."""
        if not parts:
            raise ValueError("merge_parallel needs at least one part")
        return cls(
            time_s=max(s.time_s for s in parts),
            kernel_launches=sum(s.kernel_launches for s in parts),
            lib_calls=sum(s.lib_calls for s in parts),
            builtin_calls=sum(s.builtin_calls for s in parts),
            graph_captures=sum(s.graph_captures for s in parts),
            graph_replays=sum(s.graph_replays for s in parts),
            replayed_kernels=sum(s.replayed_kernels for s in parts),
            allocations=sum(s.allocations for s in parts),
            allocated_bytes_total=sum(
                s.allocated_bytes_total for s in parts
            ),
            escaping_bytes_total=sum(s.escaping_bytes_total for s in parts),
            current_bytes=sum(s.current_bytes for s in parts),
            peak_bytes=max(s.peak_bytes for s in parts),
            kernel_time_s=max(s.kernel_time_s for s in parts),
            launch_overhead_s=max(s.launch_overhead_s for s in parts),
            comm_time_s=max(s.comm_time_s for s in parts),
        )

    def merge(self, other: "ExecutionStats") -> None:
        self.time_s += other.time_s
        self.kernel_launches += other.kernel_launches
        self.lib_calls += other.lib_calls
        self.builtin_calls += other.builtin_calls
        self.graph_captures += other.graph_captures
        self.graph_replays += other.graph_replays
        self.replayed_kernels += other.replayed_kernels
        self.allocations += other.allocations
        self.allocated_bytes_total += other.allocated_bytes_total
        self.escaping_bytes_total += other.escaping_bytes_total
        self.current_bytes += other.current_bytes
        self.peak_bytes = max(self.peak_bytes, other.peak_bytes)
        self.kernel_time_s += other.kernel_time_s
        self.launch_overhead_s += other.launch_overhead_s
        self.comm_time_s += other.comm_time_s

    def summary(self) -> Dict[str, float]:
        out = {
            "time_s": self.time_s,
            "kernel_launches": self.kernel_launches,
            "lib_calls": self.lib_calls,
            "builtin_calls": self.builtin_calls,
            "kernel_time_s": self.kernel_time_s,
            "launch_overhead_s": self.launch_overhead_s,
            "graph_captures": self.graph_captures,
            "graph_replays": self.graph_replays,
            "allocations": self.allocations,
            "allocated_MiB": self.allocated_bytes_total / (1 << 20),
            "peak_MiB": self.peak_bytes / (1 << 20),
        }
        # Emitted only when collectives actually ran: single-device
        # summaries stay byte-identical to their pinned baselines.
        if self.comm_time_s:
            out["comm_time_s"] = self.comm_time_s
        return out


@dataclass
class ProfileReport:
    """Execution statistics joined with the compile-time pipeline report.

    The pipeline report (per-pass wall time, IR statistics, skip reasons)
    comes from the ``PassContext`` the module was built under — see
    :class:`repro.transform.PipelineReport`; it is attached to every
    ``Executable`` as ``exe.pipeline_report``.  This object is what the
    benchmark harness serializes alongside measured series, so pass-level
    compile cost shows up in the perf artifacts.
    """

    stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: A ``repro.transform.PipelineReport``, when the executable carried one.
    pipeline_report: Optional[Any] = None

    @classmethod
    def from_vm(cls, vm) -> "ProfileReport":
        """Snapshot a VirtualMachine's stats + its executable's report."""
        return cls(
            stats=vm.stats,
            pipeline_report=getattr(vm.exe, "pipeline_report", None),
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"execution": self.stats.summary()}
        if self.pipeline_report is not None:
            out["pipeline"] = self.pipeline_report.to_dict()
        return out

    def pass_timings(self) -> Dict[str, float]:
        """Per-pass compile wall time (empty without a Timing instrument)."""
        if self.pipeline_report is None:
            return {}
        return self.pipeline_report.timings()


class RuntimePool:
    """Exact-size-recycling allocator (the no-planning baseline of §5.2)."""

    def __init__(self, stats: ExecutionStats):
        self.stats = stats
        self._free: Dict[int, int] = {}  # size -> free block count

    def allocate(self, size: int, escaping: bool = False) -> bool:
        """Returns True when a recycled block was used (no new allocation)."""
        if self._free.get(size, 0) > 0:
            self._free[size] -= 1
            self.stats.current_bytes += size
            self.stats.peak_bytes = max(self.stats.peak_bytes, self.stats.current_bytes)
            return True
        self.stats.record_alloc(size, escaping)
        return False

    def release(self, size: int) -> None:
        self._free[size] = self._free.get(size, 0) + 1
        self.stats.record_free(size)
