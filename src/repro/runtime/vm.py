"""The Relax virtual machine.

After the lowering pipeline (§4.7) a Relax program is "a sequence of
virtual machine instructions, each of which is a call into a generated or
builtin function".  This module defines that instruction set and its
interpreter.

Symbolic shapes at runtime follow the paper's design: each VM function owns
an integer *shape heap*; ``MatchShape`` populates variable slots from input
tensor shapes (and asserts the lightweight §4.1 boundary checks),
``ComputeShape`` evaluates derived symbolic expressions into slots, and
every downstream shape-consuming instruction (``AllocStorage``,
``AllocTensor``, ``MakeShape``, ``CallTir`` symbolic arguments) reads slots.

Execution accounting runs on the analytical device model (DESIGN.md §2):
each kernel contributes roofline time + launch overhead; captured graphs
replay with one graph-launch overhead (§4.5); storages and pool traffic
feed the Table 2 memory numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import dtypes, sym, tir
from ..obs.trace import TraceRecorder
from .device import Device
from .library import REGISTRY, LibraryRegistry
from .ndarray import NDArray, ShapeTuple, Storage
from .profiler import ExecutionStats, RuntimePool

# A shape dimension spec: ("const", value) or ("slot", heap index).
DimSpec = Tuple[str, int]


def const_dim(value: int) -> DimSpec:
    return ("const", int(value))


def slot_dim(slot: int) -> DimSpec:
    return ("slot", slot)


# -- instructions ------------------------------------------------------------------


@dataclass
class Instr:
    pass


@dataclass
class MatchShape(Instr):
    """Read a tensor's shape; store into / assert against heap slots.

    ``actions`` is a list of (dim_index, kind, payload):
    ``("store", slot)`` binds a fresh symbolic variable;
    ``("assert_slot", slot)`` / ``("assert_const", value)`` are the runtime
    checks generated from annotations (§4.1, match_cast §3.2).
    """

    reg: int
    actions: List[Tuple[int, str, int]]
    ndim: Optional[int] = None
    dtype: Optional[str] = None
    context: str = ""


@dataclass
class ComputeShape(Instr):
    """Evaluate a symbolic expression over heap slots into a slot."""

    dst_slot: int
    expr: sym.PrimExpr
    var_slots: List[Tuple[sym.SymVar, int]]


@dataclass
class MakeShape(Instr):
    """Construct a first-class runtime ShapeTuple from slots/consts."""

    dst: int
    dims: List[DimSpec]


@dataclass
class LoadConst(Instr):
    dst: int
    const_idx: int


@dataclass
class AllocStorage(Instr):
    """Allocate (or reuse, across calls) a storage of ``size`` bytes."""

    dst: int
    size: DimSpec
    escapes: bool = False  # holds a returned value (KV cache, logits)
    prov: Tuple[str, ...] = ()  # source-op provenance chain


@dataclass
class AllocTensor(Instr):
    """Instantiate a tensor, either from a planned storage or the pool."""

    dst: int
    dims: List[DimSpec]
    dtype: str
    storage: Optional[int] = None  # register holding a Storage
    escapes: bool = False
    prov: Tuple[str, ...] = ()


@dataclass
class KillTensor(Instr):
    """Last use passed: release a pool-allocated tensor."""

    reg: int
    prov: Tuple[str, ...] = ()  # provenance of the alloc whose life this ends


@dataclass
class CallTir(Instr):
    """Launch a tensor program in destination-passing style."""

    func: str
    args: List[int]
    outs: List[int]
    sym_args: List[DimSpec] = field(default_factory=list)
    prov: Tuple[str, ...] = ()


@dataclass
class CallLib(Instr):
    """Launch an external library kernel in DPS."""

    name: str
    args: List[int]
    outs: List[int]
    prov: Tuple[str, ...] = ()


@dataclass
class CallBuiltin(Instr):
    """Call a VM builtin (allocating/data-dependent routines)."""

    dst: Optional[int]
    name: str
    args: List[int]
    prov: Tuple[str, ...] = ()


@dataclass
class CallFunc(Instr):
    """Call another VM-level function (subgraph function call)."""

    dst: int
    func: str
    args: List[int]


@dataclass
class MakeTupleI(Instr):
    dst: int
    srcs: List[int]


@dataclass
class GetItemI(Instr):
    dst: int
    src: int
    index: int


@dataclass
class If(Instr):
    cond: int
    then_body: List[Instr]
    then_out: int
    else_body: List[Instr]
    else_out: int
    dst: int


@dataclass
class Ret(Instr):
    reg: int


@dataclass
class VMFunction:
    name: str
    params: List[str]
    body: List[Instr]
    num_regs: int
    num_slots: int
    attrs: Dict = field(default_factory=dict)


class Executable:
    """A compiled module: VM functions + bound tensor programs + constants."""

    def __init__(self):
        self.functions: Dict[str, VMFunction] = {}
        self.tir_funcs: Dict[str, tir.PrimFunc] = {}
        self.constants: List[np.ndarray] = []

    def add_constant(self, array: np.ndarray) -> int:
        self.constants.append(array)
        return len(self.constants) - 1


class VMError(Exception):
    pass


class _Frame:
    __slots__ = ("regs", "heap")

    def __init__(self, num_regs: int, num_slots: int):
        self.regs: List = [None] * num_regs
        self.heap = np.zeros(num_slots, dtype=np.int64)


def ccl_combine(kind: str, chunks: List[np.ndarray], rank: int,
                extra: int) -> np.ndarray:
    """Combine rank-ordered collective contributions (shared by the VM's
    degenerate single-device path and the mesh's CollectiveChannel).

    Reductions accumulate strictly in rank order (``((c0 + c1) + c2)...``)
    and in f64 — the fixed order and precision that make sharded float
    results deterministic to the last bit (the caller casts back to the
    input dtype, a single rounding, matching the one rounding of the
    f64-internal compute kernels).  ``extra`` is the axis (all_gather /
    reduce_scatter) or the root rank (broadcast).
    """
    def widen(c):
        return c.astype(np.float64) if c.dtype.kind == "f" else c

    if kind == "all_reduce":
        acc = widen(chunks[0])
        for c in chunks[1:]:
            acc = acc + widen(c)
        return acc
    if kind == "all_gather":
        return np.concatenate(chunks, axis=extra)
    if kind == "reduce_scatter":
        acc = widen(chunks[0])
        for c in chunks[1:]:
            acc = acc + widen(c)
        world = len(chunks)
        if acc.shape[extra] % world:
            raise VMError(
                f"ccl.reduce_scatter: dim {extra} of size "
                f"{acc.shape[extra]} is not divisible by {world}"
            )
        return np.split(acc, world, axis=extra)[rank]
    if kind == "broadcast":
        return chunks[extra]
    raise VMError(f"unknown collective ccl.{kind!r}")


class VirtualMachine:
    """Interprets an Executable on a modeled device.

    ``concrete`` selects the execution mode: with it, kernels compute real
    values via the tensor-program interpreter and the library registry;
    without it, only shapes, allocations and the device clock advance.
    """

    def __init__(
        self,
        executable: Executable,
        device: Device,
        concrete: bool = True,
        enable_cuda_graph: bool = True,
        registry: LibraryRegistry = REGISTRY,
    ):
        self.exe = executable
        self.device = device
        self.concrete = concrete
        self.enable_cuda_graph = enable_cuda_graph
        self.registry = registry
        self.stats = ExecutionStats()
        #: Optional trace hook (see :mod:`repro.obs.trace`).  ``None`` —
        #: the default — keeps execution bit-identical to an untraced run.
        self.tracer: Optional[TraceRecorder] = None
        #: Optional mesh placement (:class:`repro.dist.mesh.MeshContext`):
        #: rank/world/channel for ``ccl.*`` builtins.  ``None`` — the
        #: default — selects degenerate single-device replica semantics.
        self.mesh = None
        #: Optional :class:`repro.dist.interconnect.Interconnect` charged
        #: by collective builtins; ``None`` prices collectives at zero.
        self.interconnect = None
        self.pool = RuntimePool(self.stats)
        self._storage_cache: Dict[Tuple[str, int], Storage] = {}
        self._graph_cache: Dict[Tuple, int] = {}
        self._cost_cache: Dict[Tuple, Tuple[int, int]] = {}
        self._replay_depth = 0
        self._const_cache: Dict[int, NDArray] = {}

    # -- public API ------------------------------------------------------------

    def run(self, func_name: str, *args):
        """Invoke a VM function with NDArray / ShapeTuple / int arguments."""
        return self._call(func_name, list(args))

    def reset_stats(self, *, reset_pool: bool = True) -> ExecutionStats:
        """Start a fresh :class:`ExecutionStats` window; returns the old one.

        With ``reset_pool=True`` (the default, and the historical
        behaviour) the :class:`RuntimePool` free list is dropped too, so
        the next run re-allocates blocks an uninterrupted run would have
        recycled — correct for "measure one steady-state step from
        scratch", but it *double-counts allocations* if used to split one
        continuous workload into windows.  For per-window deltas on a
        shared VM (e.g. scheduler iterations in ``repro.serve``) either
        pass ``reset_pool=False``, which re-binds the live pool to the new
        stats object, or — preferably — leave the stats alone and use
        ``stats.copy()`` / ``stats.delta()``.
        """
        old = self.stats
        self.stats = ExecutionStats()
        if reset_pool:
            self.pool = RuntimePool(self.stats)
        else:
            self.pool.stats = self.stats
        return old

    # -- function invocation ------------------------------------------------------

    def _call(self, func_name: str, args: List):
        if func_name not in self.exe.functions:
            raise VMError(f"no VM function named {func_name!r}")
        func = self.exe.functions[func_name]
        if len(args) != len(func.params):
            raise VMError(
                f"{func_name}: expected {len(func.params)} arguments, got {len(args)}"
            )

        use_graph = (
            func.attrs.get("cuda_graph")
            and self.enable_cuda_graph
            and self._replay_depth == 0
        )
        if use_graph:
            key = (func_name, self._graph_signature(func, args))
            if key in self._graph_cache:
                return self._run_replayed(func, args)
            # First run with this shape signature: capture.
            self.stats.graph_captures += 1
            capture_s = 10 * self.device.kernel_launch_overhead
            if self.tracer is not None:
                self.tracer.emit("graph_capture", func_name,
                                 self.stats.time_s, capture_s)
            self.stats.time_s += capture_s
            result = self._run_body(func, args)
            self._graph_cache[key] = 1
            return result
        return self._run_body(func, args)

    def _run_replayed(self, func: VMFunction, args: List):
        self._replay_depth += 1
        launches_before = self.stats.kernel_launches + self.stats.lib_calls
        try:
            result = self._run_body(func, args)
        finally:
            self._replay_depth -= 1
        self.stats.graph_replays += 1
        replayed = self.stats.kernel_launches + self.stats.lib_calls - launches_before
        self.stats.replayed_kernels += replayed
        if self.tracer is not None:
            self.tracer.emit("graph_replay", func.name, self.stats.time_s,
                             self.device.graph_launch_overhead, kernels=replayed)
        self.stats.time_s += self.device.graph_launch_overhead
        return result

    @staticmethod
    def _graph_signature(func: VMFunction, args: List) -> Tuple:
        """Capture key: like _signature but skipping bounded dynamic dims.

        Dims planned with worst-case storage (declared upper bounds) do not
        invalidate the captured graph when they vary — the replay updates
        kernel parameters in place (cudaGraphExecUpdate semantics) — so
        they are excluded from the key.
        """
        dynamic = func.attrs.get("graph_dynamic_dims") or {}
        sig = []
        for i, arg in enumerate(args):
            skip = set(dynamic.get(i, ()))
            if isinstance(arg, NDArray):
                dims = tuple(
                    -1 if d in skip else v for d, v in enumerate(arg.shape)
                )
                sig.append(("t",) + dims)
            else:
                sig.append(VirtualMachine._signature([arg])[0])
        return tuple(sig)

    @staticmethod
    def _signature(args: List) -> Tuple:
        sig = []
        for arg in args:
            if isinstance(arg, NDArray):
                sig.append(("t",) + arg.shape)
            elif isinstance(arg, ShapeTuple):
                sig.append(("s",) + arg.values)
            elif isinstance(arg, int):
                sig.append(("i", arg))
            elif isinstance(arg, tuple):
                sig.append(("tup", VirtualMachine._signature(list(arg))))
            else:
                sig.append(("o",))
        return tuple(sig)

    def _run_body(self, func: VMFunction, args: List):
        frame = _Frame(func.num_regs, func.num_slots)
        for i, arg in enumerate(args):
            frame.regs[i] = arg
        result = self._exec_block(func, func.body, frame)
        if result is _NO_RETURN:
            raise VMError(f"{func.name}: function body fell through without Ret")
        return result

    # -- instruction dispatch --------------------------------------------------------

    def _exec_block(self, func: VMFunction, body: List[Instr], frame: _Frame):
        for instr in body:
            if isinstance(instr, Ret):
                return frame.regs[instr.reg]
            self._exec_instr(func, instr, frame)
        return _NO_RETURN

    def _exec_instr(self, func: VMFunction, instr: Instr, frame: _Frame) -> None:
        if isinstance(instr, MatchShape):
            self._exec_match_shape(instr, frame)
        elif isinstance(instr, ComputeShape):
            env = {var: int(frame.heap[slot]) for var, slot in instr.var_slots}
            frame.heap[instr.dst_slot] = sym.evaluate(instr.expr, env)
        elif isinstance(instr, MakeShape):
            frame.regs[instr.dst] = ShapeTuple(
                [self._dim_value(d, frame) for d in instr.dims]
            )
        elif isinstance(instr, LoadConst):
            frame.regs[instr.dst] = self._load_const(instr.const_idx)
        elif isinstance(instr, AllocStorage):
            frame.regs[instr.dst] = self._alloc_storage(func, instr, frame)
        elif isinstance(instr, AllocTensor):
            frame.regs[instr.dst] = self._alloc_tensor(instr, frame)
        elif isinstance(instr, KillTensor):
            arr = frame.regs[instr.reg]
            if isinstance(arr, NDArray) and arr.storage is None:
                self.pool.release(arr.size_bytes())
                if self.tracer is not None:
                    self.tracer.emit("free", "pool_tensor", self.stats.time_s,
                                     0.0, instr.prov, size=arr.size_bytes())
            frame.regs[instr.reg] = None
        elif isinstance(instr, CallTir):
            self._exec_call_tir(instr, frame)
        elif isinstance(instr, CallLib):
            self._exec_call_lib(instr, frame)
        elif isinstance(instr, CallBuiltin):
            self._exec_builtin(instr, frame)
        elif isinstance(instr, CallFunc):
            callee_args = [frame.regs[r] for r in instr.args]
            frame.regs[instr.dst] = self._call(instr.func, callee_args)
        elif isinstance(instr, MakeTupleI):
            frame.regs[instr.dst] = tuple(frame.regs[r] for r in instr.srcs)
        elif isinstance(instr, GetItemI):
            frame.regs[instr.dst] = frame.regs[instr.src][instr.index]
        elif isinstance(instr, If):
            cond = frame.regs[instr.cond]
            taken = self._truth_value(cond)
            body = instr.then_body if taken else instr.else_body
            out = instr.then_out if taken else instr.else_out
            result = self._exec_block(func, body, frame)
            if result is not _NO_RETURN:
                raise VMError("Ret inside If branches is not supported")
            frame.regs[instr.dst] = frame.regs[out]
        else:
            raise VMError(f"unknown instruction {type(instr).__name__}")

    # -- shape machinery -------------------------------------------------------------

    def _dim_value(self, dim: DimSpec, frame: _Frame) -> int:
        kind, payload = dim
        if kind == "const":
            return payload
        return int(frame.heap[payload])

    def _exec_match_shape(self, instr: MatchShape, frame: _Frame) -> None:
        value = frame.regs[instr.reg]
        if isinstance(value, NDArray):
            shape = value.shape
            if instr.dtype is not None and value.dtype != instr.dtype:
                raise VMError(
                    f"{instr.context}: dtype mismatch, expected {instr.dtype}, "
                    f"got {value.dtype}"
                )
        elif isinstance(value, ShapeTuple):
            shape = value.values
        else:
            raise VMError(f"{instr.context}: cannot match shape of {type(value).__name__}")
        if instr.ndim is not None and len(shape) != instr.ndim:
            raise VMError(
                f"{instr.context}: rank mismatch, expected {instr.ndim}, got {len(shape)}"
            )
        for dim_idx, kind, payload in instr.actions:
            actual = shape[dim_idx]
            if kind == "store":
                frame.heap[payload] = actual
            elif kind == "assert_slot":
                if int(frame.heap[payload]) != actual:
                    raise VMError(
                        f"{instr.context}: symbolic dim {dim_idx} expected "
                        f"{int(frame.heap[payload])}, got {actual}"
                    )
            elif kind == "assert_const":
                if actual != payload:
                    raise VMError(
                        f"{instr.context}: dim {dim_idx} expected {payload}, got {actual}"
                    )
            else:  # pragma: no cover
                raise VMError(f"unknown MatchShape action {kind!r}")

    # -- memory ------------------------------------------------------------------------

    def _alloc_storage(self, func: VMFunction, instr: AllocStorage, frame: _Frame) -> Storage:
        size = self._dim_value(instr.size, frame)
        key = (func.name, id(instr))
        cached = self._storage_cache.get(key)
        if cached is not None and cached.size == size:
            return cached
        if cached is not None:
            self.stats.record_free(cached.size)
            if self.tracer is not None:
                self.tracer.emit("free", "storage", self.stats.time_s, 0.0,
                                 instr.prov, size=cached.size, resized=True)
        self.stats.record_alloc(size, instr.escapes)
        if self.tracer is not None:
            self.tracer.emit("alloc", "storage", self.stats.time_s,
                             self.device.alloc_overhead, instr.prov,
                             size=size, escapes=instr.escapes)
        self.stats.time_s += self.device.alloc_overhead
        storage = Storage(size, self.concrete)
        self._storage_cache[key] = storage
        return storage

    def _alloc_tensor(self, instr: AllocTensor, frame: _Frame) -> NDArray:
        shape = [self._dim_value(d, frame) for d in instr.dims]
        if instr.storage is not None:
            storage = frame.regs[instr.storage]
            if not isinstance(storage, Storage):
                raise VMError("AllocTensor storage register does not hold a Storage")
            needed = int(np.prod(shape, dtype=np.int64)) * dtypes.itemsize(instr.dtype) if shape else dtypes.itemsize(instr.dtype)
            if needed > storage.size:
                raise VMError(
                    f"tensor of {needed} bytes does not fit storage of {storage.size}"
                )
            return NDArray.empty(shape, instr.dtype, self.concrete, storage=storage)
        arr = NDArray.empty(shape, instr.dtype, self.concrete)
        reused = self.pool.allocate(arr.size_bytes(), instr.escapes)
        if self.tracer is not None:
            self.tracer.emit(
                "alloc", "pool_tensor", self.stats.time_s,
                0.0 if reused else self.device.alloc_overhead, instr.prov,
                size=arr.size_bytes(), escapes=instr.escapes, reused=reused,
            )
        if not reused:
            self.stats.time_s += self.device.alloc_overhead
        return arr

    # -- kernels -----------------------------------------------------------------------

    def _exec_call_tir(self, instr: CallTir, frame: _Frame) -> None:
        if instr.func not in self.exe.tir_funcs:
            raise VMError(f"no tensor program named {instr.func!r}")
        func = self.exe.tir_funcs[instr.func]
        inputs = [self._as_ndarray(frame.regs[r], instr.func) for r in instr.args]
        outputs = [self._as_ndarray(frame.regs[r], instr.func) for r in instr.outs]
        sym_values = [self._dim_value(d, frame) for d in instr.sym_args]

        bindings = self._bind_shapes(func, inputs + outputs, sym_values)
        flops, nbytes = self._kernel_cost(instr.func, func, inputs + outputs, bindings)
        event = self._account_kernel(
            func, outputs, flops, nbytes, is_lib=False,
            trace_name=instr.func, prov=instr.prov, inputs=inputs,
            bindings=bindings,
        )

        if self.concrete:
            arrays = [a.numpy() for a in inputs] + [a.numpy() for a in outputs]
            sym_bindings = {
                var: value for var, value in bindings.items()
            }
            tir.run_prim_func(func, arrays, sym_bindings=sym_bindings)
            if event is not None and self.tracer.capture_outputs:
                event.outputs = [o.numpy().copy() for o in outputs]

    def _exec_call_lib(self, instr: CallLib, frame: _Frame) -> None:
        kernel = self.registry.get(instr.name)
        if self.device.backend not in kernel.backends:
            raise VMError(
                f"library {instr.name!r} is unavailable on backend "
                f"{self.device.backend!r}"
            )
        inputs = [self._as_ndarray(frame.regs[r], instr.name) for r in instr.args]
        outputs = [self._as_ndarray(frame.regs[r], instr.name) for r in instr.outs]
        in_sd = [(a.shape, a.dtype) for a in inputs]
        out_sd = [(a.shape, a.dtype) for a in outputs]
        flops, nbytes = kernel.cost(in_sd, out_sd)
        eff_class = kernel.efficiency_class(in_sd, out_sd)
        efficiency = {
            "lib": self.device.lib_efficiency,
            "gen": self.device.gen_efficiency,
            "gen_matvec": self.device.gen_matvec_efficiency,
        }[eff_class]
        include_launch = self._replay_depth == 0
        time = self.device.kernel_time(flops, nbytes, efficiency, include_launch)
        if not include_launch:
            time += self.device.graph_kernel_overhead
        event = None
        if self.tracer is not None:
            roofline = self.device.kernel_roofline(flops, nbytes, efficiency)
            event = self.tracer.emit(
                "library", instr.name, self.stats.time_s, time, instr.prov,
                flops=flops, bytes=nbytes, efficiency=efficiency,
                roofline_s=roofline, launch_s=time - roofline,
                replayed=not include_launch,
                shapes=[list(a.shape) for a in inputs + outputs],
            )
        self.stats.time_s += time
        self.stats.kernel_time_s += time
        if include_launch:
            self.stats.launch_overhead_s += self.device.kernel_launch_overhead
        self.stats.lib_calls += 1
        if self.concrete:
            kernel.compute([a.numpy() for a in inputs], [a.numpy() for a in outputs])
            if event is not None and self.tracer.capture_outputs:
                event.outputs = [o.numpy().copy() for o in outputs]

    def _account_kernel(self, func: tir.PrimFunc, outputs, flops, nbytes, is_lib,
                        trace_name=None, prov=(), inputs=(), bindings=None):
        efficiency = self.device.gen_efficiency
        if func.attrs.get("schedule_class") == "opaque":
            # No analysis rule covers this program: the naive fallback
            # schedule applies unless Ansor-style tuning found better
            # (§4.6's "rare tensor programs" case).
            efficiency = self.device.gen_efficiency * 0.6
        tuned = func.attrs.get("tuned_efficiency")
        if tuned is not None:
            efficiency = float(tuned)
        if func.attrs.get("op_kind") == "matmul" and outputs:
            rows = 1
            for d in outputs[0].shape[:-1]:
                rows *= d
            if rows == 1:
                # Compiler-specialized matrix-vector kernels at batch 1
                # (the paper's Fig. 15 advantage).
                efficiency = self.device.gen_matvec_efficiency
            else:
                # Analysis-based schedules without autotuning trail the
                # vendor GEMM on compute-bound shapes (why partial library
                # lowering is the biggest Fig. 17 contributor).
                efficiency = self.device.gen_gemm_efficiency
        include_launch = self._replay_depth == 0
        time = self.device.kernel_time(flops, nbytes, efficiency, include_launch)
        if not include_launch:
            time += self.device.graph_kernel_overhead
        event = None
        if self.tracer is not None:
            roofline = self.device.kernel_roofline(flops, nbytes, efficiency)
            event = self.tracer.emit(
                "kernel", trace_name or func.name, self.stats.time_s, time, prov,
                flops=flops, bytes=nbytes, efficiency=efficiency,
                roofline_s=roofline, launch_s=time - roofline,
                replayed=not include_launch,
                shapes=[list(a.shape) for a in list(inputs) + list(outputs)],
                sym={var.name: int(v) for var, v in (bindings or {}).items()},
            )
        self.stats.time_s += time
        self.stats.kernel_time_s += time
        if include_launch:
            self.stats.launch_overhead_s += self.device.kernel_launch_overhead
        self.stats.kernel_launches += 1
        return event

    def _bind_shapes(self, func: tir.PrimFunc, arrays: List[NDArray], sym_values):
        bindings: Dict[sym.SymVar, int] = {}
        for var, value in zip(func.sym_params, sym_values):
            bindings[var] = int(value)
        for buf, arr in zip(func.params, arrays):
            for dim, actual in zip(buf.shape, arr.shape):
                if isinstance(dim, sym.SymVar) and dim not in bindings:
                    bindings[dim] = int(actual)
        return bindings

    def _kernel_cost(self, name, func, arrays, bindings):
        key = (name, tuple(a.shape for a in arrays))
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        flops = tir.count_flops(func, bindings)
        nbytes = tir.count_bytes(func, bindings)
        self._cost_cache[key] = (flops, nbytes)
        return flops, nbytes

    # -- builtins -----------------------------------------------------------------------

    def _exec_builtin(self, instr: CallBuiltin, frame: _Frame) -> None:
        args = [frame.regs[r] for r in instr.args]
        self.stats.builtin_calls += 1
        ts = self.stats.time_s
        if instr.name == "vm.builtin.shape_of":
            arr = args[0]
            result = ShapeTuple(arr.shape)
        elif instr.name == "vm.builtin.unique":
            result = self._builtin_unique(args[0])
        elif instr.name == "vm.builtin.nonzero":
            result = self._builtin_nonzero(args[0])
        elif instr.name.startswith("vm.builtin.ccl."):
            result = self._builtin_ccl(
                instr.name[len("vm.builtin.ccl."):], args
            )
        else:
            raise VMError(f"unknown builtin {instr.name!r}")
        if self.tracer is not None:
            # Builtins charge the clock internally; the delta is the cost.
            self.tracer.emit("builtin", instr.name, ts,
                             self.stats.time_s - ts, instr.prov)
        if instr.dst is not None:
            frame.regs[instr.dst] = result

    def _builtin_unique(self, arr: NDArray) -> NDArray:
        self.stats.time_s += self.device.kernel_launch_overhead * 2
        if self.concrete:
            out = np.unique(arr.numpy())
            self.pool.allocate(out.nbytes)
            return NDArray.from_numpy(out)
        # Abstract mode: data-dependent length is unknowable; use the upper
        # bound (every element distinct), matching §4.3's bound-based planning.
        result = NDArray.abstract((arr.num_elements(),), arr.dtype)
        self.pool.allocate(result.size_bytes())
        return result

    def _builtin_ccl(self, kind: str, args: List) -> NDArray:
        """Collective over the device mesh (``vm.builtin.ccl.*``).

        Integer operands (world, then axis or root) arrive as one-element
        shape tuples — the ``PrimValue`` calling convention.  With a mesh
        attached the value comes from the rank-ordered exchange over the
        :class:`~repro.dist.mesh.CollectiveChannel`; without one the VM
        acts as one rank of a mesh whose peers all hold this replica.
        The modeled interconnect (when attached) charges ring time into
        both ``time_s`` and ``comm_time_s``.
        """
        if kind not in ("all_reduce", "all_gather", "reduce_scatter",
                        "broadcast"):
            raise VMError(f"unknown collective ccl.{kind!r}")
        arr = self._as_ndarray(args[0], f"ccl.{kind}")
        world = int(args[1][0])
        extra = int(args[2][0]) if len(args) > 2 else 0
        if world < 1:
            raise VMError(f"ccl.{kind}: world must be >= 1, got {world}")
        mesh = self.mesh
        rank = 0
        if mesh is not None:
            if mesh.world != world:
                raise VMError(
                    f"ccl.{kind}: compiled for world {world} but running "
                    f"on a mesh of {mesh.world}"
                )
            rank = mesh.rank

        # One host-side enqueue, like every builtin; the wire time is the
        # interconnect's ring cost over the full logical payload.
        self.stats.time_s += self.device.kernel_launch_overhead
        if self.interconnect is not None and world > 1:
            full_bytes = arr.size_bytes()
            if kind == "all_gather":
                full_bytes *= world
            comm_s = getattr(self.interconnect, f"{kind}_s")(
                world, full_bytes
            )
            self.stats.time_s += comm_s
            self.stats.comm_time_s += comm_s

        if not self.concrete:
            shape = list(arr.shape)
            if kind == "all_gather":
                shape[extra] *= world
            elif kind == "reduce_scatter":
                if shape[extra] % world:
                    raise VMError(
                        f"ccl.reduce_scatter: dim {extra} of size "
                        f"{shape[extra]} is not divisible by {world}"
                    )
                shape[extra] //= world
            result = NDArray.abstract(tuple(shape), arr.dtype)
            self.pool.allocate(result.size_bytes())
            return result

        x = arr.numpy()
        if mesh is not None and mesh.channel is not None:
            chunks = mesh.channel.exchange(rank, x)
        else:
            chunks = [x] * world
        out = ccl_combine(kind, chunks, rank, extra)
        if out.dtype != x.dtype:
            out = out.astype(x.dtype)  # round the f64 reduction once
        elif any(out is c or out.base is not None for c in chunks):
            # Never alias a peer's (or our own) buffer: reduce_scatter
            # slices and broadcast returns the root's array directly.
            out = out.copy()
        self.pool.allocate(out.nbytes)
        return NDArray.from_numpy(out)

    def _builtin_nonzero(self, arr: NDArray) -> NDArray:
        self.stats.time_s += self.device.kernel_launch_overhead * 2
        if self.concrete:
            out = np.flatnonzero(arr.numpy()).astype(np.int64)
            self.pool.allocate(out.nbytes)
            return NDArray.from_numpy(out)
        result = NDArray.abstract((arr.num_elements(),), "i64")
        self.pool.allocate(result.size_bytes())
        return result

    # -- misc --------------------------------------------------------------------------

    def _load_const(self, idx: int) -> NDArray:
        cached = self._const_cache.get(idx)
        if cached is None:
            array = self.exe.constants[idx]
            if self.concrete:
                cached = NDArray.from_numpy(array)
            else:
                cached = NDArray.abstract(array.shape, dtypes.from_numpy(array.dtype))
            self._const_cache[idx] = cached
        return cached

    def _as_ndarray(self, value, context: str) -> NDArray:
        if not isinstance(value, NDArray):
            raise VMError(f"{context}: expected a tensor argument, got {type(value).__name__}")
        return value

    def _truth_value(self, cond) -> bool:
        if isinstance(cond, bool):
            return cond
        if isinstance(cond, int):
            return bool(cond)
        if isinstance(cond, NDArray):
            if not self.concrete:
                raise VMError("cannot evaluate a data-dependent branch in abstract mode")
            return bool(cond.numpy().reshape(()))
        raise VMError(f"invalid condition value {type(cond).__name__}")


class _NoReturn:
    pass


_NO_RETURN = _NoReturn()
