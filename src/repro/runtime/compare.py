"""Structural comparison of VM execution results.

The differential fuzzer (and any cross-configuration test) needs to compare
what :meth:`VirtualMachine.run` returns under different pipeline ablations.
Results are trees: NDArrays, ShapeTuples, python scalars, and (nested)
tuples of those.  :func:`flatten_values` linearizes a result into
``(path, leaf)`` pairs and :func:`compare_values` reports the first
difference as a human-readable string (or None when the trees agree).

Float tensors compare with tolerances — library kernels and generated
loop nests accumulate in different orders — and NaN/Inf must agree
*positionally*: both configurations saturating identically is correct
behavior, one saturating alone is a divergence.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from .ndarray import NDArray, ShapeTuple

DEFAULT_RTOL = 2e-3
DEFAULT_ATOL = 1e-5


def flatten_values(value: Any, path: str = "out") -> List[Tuple[str, Any]]:
    """Linearize a VM result tree into ``(path, leaf)`` pairs.

    Leaves are numpy arrays (from NDArrays), tuples of ints (from
    ShapeTuples), or plain python scalars.  Tuple/list results recurse with
    an indexed path (``out.1.0``).
    """
    if isinstance(value, NDArray):
        return [(path, value.numpy())]
    if isinstance(value, ShapeTuple):
        return [(path, tuple(int(v) for v in value))]
    if isinstance(value, (tuple, list)):
        out: List[Tuple[str, Any]] = []
        for i, field in enumerate(value):
            out.extend(flatten_values(field, f"{path}.{i}"))
        return out
    return [(path, value)]


def _leaf_diff(path: str, ref: Any, got: Any, rtol: float, atol: float) -> Optional[str]:
    if isinstance(ref, np.ndarray) or isinstance(got, np.ndarray):
        if not isinstance(ref, np.ndarray) or not isinstance(got, np.ndarray):
            return f"{path}: kind mismatch {type(ref).__name__} vs {type(got).__name__}"
        if ref.dtype != got.dtype:
            return f"{path}: dtype mismatch {ref.dtype} vs {got.dtype}"
        if ref.shape != got.shape:
            return f"{path}: shape mismatch {ref.shape} vs {got.shape}"
        if ref.dtype.kind in "fc":
            with np.errstate(over="ignore", invalid="ignore"):
                ok = np.allclose(ref, got, rtol=rtol, atol=atol, equal_nan=True)
            if not ok:
                with np.errstate(over="ignore", invalid="ignore"):
                    both = np.isfinite(ref) & np.isfinite(got)
                    delta = np.where(both, np.abs(ref.astype(np.float64)
                                                  - got.astype(np.float64)), 0.0)
                    worst = float(delta.max()) if delta.size else 0.0
                return (f"{path}: values differ (max abs diff {worst:.3e}, "
                        f"rtol={rtol}, atol={atol})")
            return None
        if not np.array_equal(ref, got):
            return f"{path}: exact values differ for dtype {ref.dtype}"
        return None
    if ref != got:
        return f"{path}: {ref!r} != {got!r}"
    return None


def compare_values(
    ref: Any,
    got: Any,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> Optional[str]:
    """First difference between two VM result trees, or None when equal.

    Structure (tuple arity, leaf kinds) must match exactly; float tensors
    compare with ``rtol``/``atol`` and positional NaN/Inf equality; integer
    and bool tensors, shapes, and scalars compare exactly.
    """
    flat_ref = flatten_values(ref)
    flat_got = flatten_values(got)
    if len(flat_ref) != len(flat_got):
        return (f"structure mismatch: {len(flat_ref)} leaves vs "
                f"{len(flat_got)} leaves")
    for (rp, rv), (gp, gv) in zip(flat_ref, flat_got):
        if rp != gp:
            return f"structure mismatch at {rp} vs {gp}"
        diff = _leaf_diff(rp, rv, gv, rtol, atol)
        if diff is not None:
            return diff
    return None
