"""NDArrays and storages — the runtime value model.

Two execution modes share one type (DESIGN.md §5):

* **concrete** — ``data`` is a NumPy array and kernels compute real values
  (tests, examples, small models);
* **abstract** — ``data`` is None; the array carries only shape/dtype, and
  kernels contribute cost but skip arithmetic (paper-scale benchmarks: an
  8B-parameter module compiles and executes its real instruction stream
  without materializing 16 GB of weights).

:class:`Storage` models a raw allocation.  After memory planning (Alg. 3)
many tensors *instantiate* from one storage; the memory profiler accounts
storage allocations, which is exactly the quantity Table 2 reports.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .. import dtypes


class Storage:
    """A raw memory region of ``size`` bytes on a device."""

    _counter = 0

    def __init__(self, size: int, concrete: bool):
        self.size = int(size)
        self.concrete = concrete
        Storage._counter += 1
        self.id = Storage._counter

    def __repr__(self) -> str:  # pragma: no cover
        return f"Storage(#{self.id}, {self.size}B)"


class NDArray:
    """A shaped, typed runtime tensor (possibly abstract)."""

    def __init__(
        self,
        shape: Sequence[int],
        dtype: str,
        data: Optional[np.ndarray] = None,
        storage: Optional[Storage] = None,
    ):
        self.shape: Tuple[int, ...] = tuple(int(d) for d in shape)
        self.dtype = dtypes.check_dtype(dtype)
        self.data = data
        self.storage = storage
        if data is not None:
            if tuple(data.shape) != self.shape:
                raise ValueError(
                    f"data shape {data.shape} does not match {self.shape}"
                )

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_numpy(array: np.ndarray) -> "NDArray":
        array = np.asarray(array)
        if array.ndim > 0 and not array.flags["C_CONTIGUOUS"]:
            # NOTE: ascontiguousarray would promote 0-d scalars to 1-d.
            array = np.ascontiguousarray(array)
        return NDArray(array.shape, dtypes.from_numpy(array.dtype), data=array)

    @staticmethod
    def abstract(shape: Sequence[int], dtype: str) -> "NDArray":
        return NDArray(shape, dtype)

    @staticmethod
    def empty(shape: Sequence[int], dtype: str, concrete: bool,
              storage: Optional[Storage] = None) -> "NDArray":
        data = None
        if concrete:
            data = np.zeros(tuple(int(d) for d in shape), dtypes.to_numpy(dtype))
        return NDArray(shape, dtype, data=data, storage=storage)

    # -- properties -----------------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        return self.data is not None

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def num_elements(self) -> int:
        count = 1
        for d in self.shape:
            count *= d
        return count

    def size_bytes(self) -> int:
        return self.num_elements() * dtypes.itemsize(self.dtype)

    def numpy(self) -> np.ndarray:
        if self.data is None:
            raise ValueError("abstract NDArray has no data")
        return self.data

    def __repr__(self) -> str:  # pragma: no cover
        mode = "concrete" if self.is_concrete else "abstract"
        return f"NDArray({self.shape}, {self.dtype!r}, {mode})"


class ShapeTuple:
    """A runtime first-class shape value (result of ``make_shape``)."""

    def __init__(self, values: Sequence[int]):
        self.values: Tuple[int, ...] = tuple(int(v) for v in values)

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: int) -> int:
        return self.values[idx]

    def __eq__(self, other) -> bool:
        return isinstance(other, ShapeTuple) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ShapeTuple{self.values}"
