"""Pure-NumPy reference implementation of the decoder-only transformer.

Ground truth for end-to-end model tests: given the same weights as an
exported :mod:`repro.models.llama` module, computes logits and caches with
plain NumPy so the compiled VM output can be checked numerically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from .llama import LlamaConfig


def _rms_norm(x, w, eps=1e-5):
    return x / np.sqrt((x.astype(np.float64) ** 2).mean(-1, keepdims=True) + eps) * w


def _layer_norm(x, g, b, eps=1e-5):
    x = x.astype(np.float64)
    mu = x.mean(-1, keepdims=True)
    var = ((x - mu) ** 2).mean(-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * g + b


def _silu(x):
    return x / (1 + np.exp(-x))


def _gelu(x):
    from scipy.special import erf

    return x * 0.5 * (1 + erf(x / math.sqrt(2)))


def _rope(x, offset, theta):
    b, s, h, d = x.shape
    half = d // 2
    pos = np.arange(s)[:, None] + offset
    freqs = theta ** (-2.0 * (np.arange(d) % half) / (2 * half))
    angle = pos * freqs
    rotated = np.concatenate([-x[..., half:], x[..., :half]], axis=-1)
    return x * np.cos(angle)[None, :, None, :] + rotated * np.sin(angle)[None, :, None, :]


def _attention(q, k, v, causal=True):
    b, s, h, d = q.shape
    m, h_kv = k.shape[1], k.shape[2]
    group = h // h_kv
    out = np.zeros_like(q)
    scale = 1.0 / math.sqrt(d)
    for head in range(h):
        kv_head = head // group
        scores = q[:, :, head, :] @ k[:, :, kv_head, :].transpose(0, 2, 1) * scale
        if causal:
            i = np.arange(s)[:, None]
            j = np.arange(m)[None, :]
            scores = np.where(j <= i + (m - s), scores, -1e9)
        e = np.exp(scores - scores.max(-1, keepdims=True))
        probs = e / e.sum(-1, keepdims=True)
        out[:, :, head, :] = probs @ v[:, :, kv_head, :]
    return out


class ReferenceLlama:
    """NumPy twin of LlamaForCausalLM; weights come from the nn module."""

    def __init__(self, cfg: LlamaConfig, params: Dict[str, np.ndarray]):
        self.cfg = cfg
        self.p = {k: v.astype(np.float64) for k, v in params.items()}

    def _linear(self, name: str, x):
        out = x @ self.p[f"{name}.weight"]
        bias_key = f"{name}.bias"
        if bias_key in self.p:
            out = out + self.p[bias_key]
        return out

    def _norm(self, name: str, x):
        if self.cfg.norm == "rms":
            return _rms_norm(x, self.p[f"{name}.weight"])
        return _layer_norm(x, self.p[f"{name}.gamma"], self.p[f"{name}.beta"])

    def forward(self, tokens: np.ndarray, caches: List[np.ndarray]
                ) -> Tuple[np.ndarray, List[np.ndarray]]:
        cfg = self.cfg
        b, s = tokens.shape
        m = caches[0].shape[1]
        act = _silu if cfg.act == "silu" else _gelu

        x = self.p["embed.weight"][tokens]
        if cfg.scale_embeddings:
            x = x * math.sqrt(cfg.hidden_size)

        new_caches = []
        for layer in range(cfg.num_layers):
            prefix = f"layers.{layer}"
            h_in = self._norm(f"{prefix}.input_norm", x)
            q = self._linear(f"{prefix}.attn.q_proj", h_in).reshape(
                b, s, cfg.num_heads, cfg.head_dim
            )
            k = self._linear(f"{prefix}.attn.k_proj", h_in).reshape(
                b, s, cfg.num_kv_heads, cfg.head_dim
            )
            v = self._linear(f"{prefix}.attn.v_proj", h_in).reshape(
                b, s, cfg.num_kv_heads, cfg.head_dim
            )
            q = _rope(q, m, cfg.rope_theta)
            k = _rope(k, m, cfg.rope_theta)
            k_full = np.concatenate([caches[2 * layer], k], axis=1)
            v_full = np.concatenate([caches[2 * layer + 1], v], axis=1)
            new_caches.extend([k_full, v_full])
            attn = _attention(q, k_full, v_full)
            attn = self._linear(
                f"{prefix}.attn.o_proj", attn.reshape(b, s, -1)
            )
            if cfg.parallel_residual:
                mlp_in = self._norm(f"{prefix}.post_norm", x)
                mlp = self._mlp(prefix, mlp_in, act)
                x = x + attn + mlp
            else:
                x = x + attn
                mlp = self._mlp(prefix, self._norm(f"{prefix}.post_norm", x), act)
                x = x + mlp

        x = self._norm("final_norm", x)
        last = x[:, -1:, :]
        if cfg.tie_embeddings:
            logits = last @ self.p["embed.weight"].T
        else:
            logits = self._linear("lm_head", last)
        return logits.astype(np.float32), new_caches

    def _mlp(self, prefix: str, x, act):
        if self.cfg.gated_mlp:
            gate = act(self._linear(f"{prefix}.mlp.gate_proj", x))
            up = self._linear(f"{prefix}.mlp.up_proj", x)
            hidden = gate * up
        else:
            hidden = act(self._linear(f"{prefix}.mlp.up_proj", x))
        return self._linear(f"{prefix}.mlp.down_proj", hidden)
