"""Iterative-denoise (diffusion-style) model for heterogeneous serving.

A deliberately minimal latent-space denoiser: each sampling step runs a
small bidirectional transformer over a fixed grid of latent tokens and
returns an updated latent of the same shape.  There is no KV cache and no
sequence growth — serving cost is N identical batched iterations, the
third request shape (after LLM prefill/decode and Whisper encode/decode)
the phase-step scheduler in :mod:`repro.serve` has to cover.

Everything is built from already-registered ops (``attention`` with
``causal=False``, ``gelu``, ``layer_norm`` via the nn frontend), so the
model rides the existing legalization/fusion/dispatch pipeline unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import ops
from ..core import BlockBuilder, TensorAnn
from ..core.expr import Expr, ShapeExpr
from ..frontend.nn import ExportedModule, LayerNorm, Linear, Module, export_module


@dataclass
class DenoiseConfig:
    name: str
    latent_dim: int
    #: Latent tokens per sample (e.g. a flattened latent grid); every
    #: denoise step processes all of them — no growth between steps.
    latent_tokens: int
    num_heads: int
    ffn_dim: int
    num_layers: int
    dtype: str = "f32"

    @property
    def head_dim(self) -> int:
        return self.latent_dim // self.num_heads


DIT_BASE = DenoiseConfig(
    name="dit-base", latent_dim=768, latent_tokens=256, num_heads=12,
    ffn_dim=3072, num_layers=12, dtype="f16",
)

TINY_DENOISE = DenoiseConfig(
    name="tiny-denoise", latent_dim=16, latent_tokens=8, num_heads=2,
    ffn_dim=32, num_layers=2,
)


class DenoiseBlock(Module):
    def __init__(self, cfg: DenoiseConfig):
        self.cfg = cfg
        d = cfg.latent_dim
        self.norm1 = LayerNorm(d, dtype=cfg.dtype)
        self.q_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.k_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.v_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.out_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.norm2 = LayerNorm(d, dtype=cfg.dtype)
        self.fc1 = Linear(d, cfg.ffn_dim, bias=True, dtype=cfg.dtype)
        self.fc2 = Linear(cfg.ffn_dim, d, bias=True, dtype=cfg.dtype)

    def forward(self, bb: BlockBuilder, x: Expr, b, n) -> Expr:
        cfg = self.cfg
        h, d = cfg.num_heads, cfg.head_dim
        y = self.norm1.forward(bb, x)
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, y), ShapeExpr([b, n, h, d])))
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, y), ShapeExpr([b, n, h, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, y), ShapeExpr([b, n, h, d])))
        attn = bb.emit(ops.attention(q, k, v, causal=False))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, n, cfg.latent_dim])))
        x = bb.emit(ops.add(x, self.out_proj.forward(bb, attn)))
        mlp = self.fc2.forward(
            bb, bb.emit(ops.gelu(self.fc1.forward(bb, self.norm2.forward(bb, x))))
        )
        return bb.emit(ops.add(x, mlp))


class DenoiseModel(Module):
    def __init__(self, cfg: DenoiseConfig):
        self.cfg = cfg
        self.blocks = [DenoiseBlock(cfg) for _ in range(cfg.num_layers)]
        self.final_norm = LayerNorm(cfg.latent_dim, dtype=cfg.dtype)
        self.out = Linear(cfg.latent_dim, cfg.latent_dim, bias=True,
                          dtype=cfg.dtype)

    def step(self, bb: BlockBuilder, latent: Expr, b, n) -> Expr:
        x = latent
        for block in self.blocks:
            x = block.forward(bb, x, b, n)
        return self.out.forward(bb, self.final_norm.forward(bb, x))


def build_denoise(cfg: DenoiseConfig) -> ExportedModule:
    """Export ``denoise_step``: one sampling iteration, latent → latent."""
    model = DenoiseModel(cfg)

    def denoise_step(bb: BlockBuilder, latent):
        b = bb.shape_var("b")
        n = bb.shape_var("n")
        return model.step(bb, latent, b, n)

    spec = {
        "denoise_step": (
            {"latent": TensorAnn(("b", "n", cfg.latent_dim), cfg.dtype)},
            denoise_step,
        ),
    }
    return export_module(model, spec)
