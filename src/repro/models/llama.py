"""Decoder-only transformer family (paper §5.1, §5.3).

One configurable implementation covers every decoder-only model the paper
evaluates: Llama3-8B / Llama2-7B (RMSNorm + SwiGLU + GQA), Gemma1.1-7B
(GeGLU, tied embeddings, embedding scaling), Qwen2-7B (attention bias),
Phi3-mini, and RedPajama-3B (GPT-NeoX: LayerNorm, parallel residual,
plain GELU MLP).

The exported module has two functions sharing one weight list:

* ``prefill(tokens (b, s), k/v caches (b, m, h_kv, d) x L)``
* ``decode(tokens (b, 1), k/v caches (b, m, h_kv, d) x L)``

both returning ``(logits (b, 1, vocab), new caches (b, m+s, ...))``.
Batch ``b``, sequence ``s`` and cache length ``m`` are *symbolic*: the
module compiles once for arbitrary batch sizes and sequence lengths
(§5.1: "Relax compiles models only once for arbitrary batch sizes and
sequence lengths"), with the KV concatenation producing the ``m + s``
shape relation that memory planning and CUDA-graph keying reason about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from .. import ops, sym
from ..core import BlockBuilder, TensorAnn
from ..core.expr import Expr, ShapeExpr, const
from ..frontend.nn import (
    Embedding,
    ExportedModule,
    LayerNorm,
    Linear,
    Module,
    RMSNorm,
    ShardedExportedModule,
    export_module,
)
from ..frontend.quantize import QuantizedLinear

import numpy as np


@dataclass
class LlamaConfig:
    name: str
    hidden_size: int
    intermediate_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    vocab_size: int
    norm: str = "rms"  # rms | layer
    act: str = "silu"  # silu | gelu
    gated_mlp: bool = True
    rope_theta: float = 10000.0
    attention_bias: bool = False
    tie_embeddings: bool = False
    scale_embeddings: bool = False  # Gemma multiplies by sqrt(hidden)
    parallel_residual: bool = False  # GPT-NeoX style
    context_length: int = 4096
    dtype: str = "f32"
    quantize_bits: Optional[int] = None  # None = full precision
    quantize_group: int = 32

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads


# -- the paper's evaluated configurations ------------------------------------------

LLAMA3_8B = LlamaConfig(
    name="Llama3-8B", hidden_size=4096, intermediate_size=14336,
    num_layers=32, num_heads=32, num_kv_heads=8, vocab_size=128256,
    rope_theta=500000.0, context_length=8192, dtype="f16",
)

LLAMA2_7B = LlamaConfig(
    name="Llama2-7B", hidden_size=4096, intermediate_size=11008,
    num_layers=32, num_heads=32, num_kv_heads=32, vocab_size=32000,
    context_length=4096, dtype="f16",
)

GEMMA_7B = LlamaConfig(
    name="Gemma1.1-7B", hidden_size=3072, intermediate_size=24576,
    num_layers=28, num_heads=16, num_kv_heads=16, vocab_size=256000,
    act="gelu", tie_embeddings=True, scale_embeddings=True,
    context_length=8192, dtype="f16",
)

QWEN2_7B = LlamaConfig(
    name="Qwen2-7B", hidden_size=3584, intermediate_size=18944,
    num_layers=28, num_heads=28, num_kv_heads=4, vocab_size=152064,
    attention_bias=True, rope_theta=1000000.0, context_length=8192,
    dtype="f16",
)

PHI3_MINI = LlamaConfig(
    name="Phi3-mini-4k", hidden_size=3072, intermediate_size=8192,
    num_layers=32, num_heads=32, num_kv_heads=32, vocab_size=32064,
    context_length=4096, dtype="f16",
)

REDPAJAMA_3B = LlamaConfig(
    name="RedPajama-3B", hidden_size=2560, intermediate_size=10240,
    num_layers=32, num_heads=32, num_kv_heads=32, vocab_size=50432,
    norm="layer", act="gelu", gated_mlp=False, parallel_residual=True,
    context_length=2048, dtype="f16",
)

TINY_LLAMA = LlamaConfig(
    name="tiny-llama", hidden_size=16, intermediate_size=32,
    num_layers=2, num_heads=2, num_kv_heads=1, vocab_size=32,
    context_length=64, dtype="f32",
)

TINY_NEOX = LlamaConfig(
    name="tiny-neox", hidden_size=16, intermediate_size=32,
    num_layers=2, num_heads=2, num_kv_heads=2, vocab_size=32,
    norm="layer", act="gelu", gated_mlp=False, parallel_residual=True,
    context_length=64, dtype="f32",
)

TINY_GEMMA = LlamaConfig(
    name="tiny-gemma", hidden_size=16, intermediate_size=48,
    num_layers=2, num_heads=2, num_kv_heads=2, vocab_size=32,
    act="gelu", tie_embeddings=True, scale_embeddings=True,
    context_length=64, dtype="f32",
)

TINY_QWEN = LlamaConfig(
    name="tiny-qwen", hidden_size=16, intermediate_size=32,
    num_layers=2, num_heads=4, num_kv_heads=2, vocab_size=32,
    attention_bias=True, context_length=64, dtype="f32",
)

#: Head geometry divisible by a mesh of up to 4 (8 heads, 4 KV heads):
#: the tensor-parallel test/bench config.  TINY_LLAMA's single KV head
#: cannot be head-sharded.
TINY_LLAMA_TP = LlamaConfig(
    name="tiny-llama-tp", hidden_size=32, intermediate_size=64,
    num_layers=2, num_heads=8, num_kv_heads=4, vocab_size=32,
    context_length=64, dtype="f32",
)


def _make_linear(cfg: LlamaConfig, in_f: int, out_f: int, bias: bool = False):
    if cfg.quantize_bits is not None:
        return QuantizedLinear(
            in_f, out_f, bits=cfg.quantize_bits, group_size=cfg.quantize_group,
            dtype=cfg.dtype,
        )
    return Linear(in_f, out_f, bias=bias, dtype=cfg.dtype)


def _make_norm(cfg: LlamaConfig, dim: int):
    if cfg.norm == "rms":
        return RMSNorm(dim, dtype=cfg.dtype)
    return LayerNorm(dim, dtype=cfg.dtype)


class LlamaAttention(Module):
    def __init__(self, cfg: LlamaConfig):
        h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
        self.cfg = cfg
        self.q_proj = _make_linear(cfg, cfg.hidden_size, h * d, cfg.attention_bias)
        self.k_proj = _make_linear(cfg, cfg.hidden_size, kv * d, cfg.attention_bias)
        self.v_proj = _make_linear(cfg, cfg.hidden_size, kv * d, cfg.attention_bias)
        self.o_proj = _make_linear(cfg, h * d, cfg.hidden_size)

    def forward(self, bb: BlockBuilder, x: Expr, k_cache: Expr, v_cache: Expr,
                b, s, m) -> Tuple[Expr, Expr, Expr]:
        cfg = self.cfg
        h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, x), ShapeExpr([b, s, h, d])))
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, x), ShapeExpr([b, s, kv, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, x), ShapeExpr([b, s, kv, d])))
        q = bb.emit(ops.rope(q, offset=m, theta=cfg.rope_theta))
        k = bb.emit(ops.rope(k, offset=m, theta=cfg.rope_theta))
        k_full = bb.emit(ops.concat([k_cache, k], axis=1))
        v_full = bb.emit(ops.concat([v_cache, v], axis=1))
        attn = bb.emit(ops.attention(q, k_full, v_full, causal=True))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, h * d])))
        return self.o_proj.forward(bb, attn), k_full, v_full

    def forward_prefill_paged(self, bb: BlockBuilder, x: Expr, k_pages: Expr,
                              v_pages: Expr, block_table: Expr, past: Expr,
                              b, s, m) -> Tuple[Expr, Expr, Expr]:
        """Chunked prefill against the paged KV pool (repro.serve).

        All sequences in the chunk batch share cached length ``m`` (the
        engine issues one call per sequence chunk); rotary offsets and
        the attention read path mirror the dense :meth:`forward` exactly,
        so outputs are bit-identical to dense prefill.  Returns the new
        K/V chunk slices for the host to write into the pool pages.
        """
        cfg = self.cfg
        h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, x), ShapeExpr([b, s, h, d])))
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, x), ShapeExpr([b, s, kv, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, x), ShapeExpr([b, s, kv, d])))
        q = bb.emit(ops.rope(q, offset=m, theta=cfg.rope_theta))
        k = bb.emit(ops.rope(k, offset=m, theta=cfg.rope_theta))
        attn = bb.emit(ops.paged_prefill(
            q, k_pages, v_pages, block_table, past, k, v
        ))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, h * d])))
        return self.o_proj.forward(bb, attn), k, v

    def forward_verify_paged(self, bb: BlockBuilder, x: Expr, k_pages: Expr,
                             v_pages: Expr, block_table: Expr, lengths: Expr,
                             spec_lens: Expr, b, s) -> Tuple[Expr, Expr, Expr]:
        """Speculative verify against the paged KV pool (repro.serve).

        ``s`` query positions per sequence (the last accepted token plus
        the draft's proposals, ragged per sequence via ``spec_lens``);
        row ``i`` of sequence ``bi`` sits at absolute position
        ``lengths[bi] + i``, which is exactly what rotary's per-sequence
        ``offsets`` mode computes.  Returns the attention output plus
        the new K/V slices — the engine writes the accepted prefix into
        the pool and drops the rejected tail (rollback).
        """
        cfg = self.cfg
        h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, x),
                                ShapeExpr([b, s, h, d])))
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, x),
                                ShapeExpr([b, s, kv, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, x),
                                ShapeExpr([b, s, kv, d])))
        q = bb.emit(ops.rope(q, theta=cfg.rope_theta, offsets=lengths))
        k = bb.emit(ops.rope(k, theta=cfg.rope_theta, offsets=lengths))
        attn = bb.emit(ops.paged_verify(
            q, k_pages, v_pages, block_table, lengths, spec_lens, k, v
        ))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, h * d])))
        return self.o_proj.forward(bb, attn), k, v

    def forward_paged(self, bb: BlockBuilder, x: Expr, k_pages: Expr,
                      v_pages: Expr, block_table: Expr, lengths: Expr,
                      b) -> Tuple[Expr, Expr, Expr]:
        """Single-token decode against a paged KV pool (repro.serve).

        Returns the attention output plus this step's new K/V slices —
        the functional IR cannot write the pool in place, so the serving
        engine appends them to the sequence's pages after the call.
        """
        cfg = self.cfg
        h, d, kv = cfg.num_heads, cfg.head_dim, cfg.num_kv_heads
        one = sym.IntImm(1)
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, x),
                                ShapeExpr([b, one, h, d])))
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, x),
                                ShapeExpr([b, one, kv, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, x),
                                ShapeExpr([b, one, kv, d])))
        # Each sequence's current token sits at its own position: the
        # per-sequence cache length drives the rotary phase.
        q = bb.emit(ops.rope(q, theta=cfg.rope_theta, offsets=lengths))
        k = bb.emit(ops.rope(k, theta=cfg.rope_theta, offsets=lengths))
        attn = bb.emit(ops.paged_attention(
            q, k_pages, v_pages, block_table, lengths, k, v
        ))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, one, h * d])))
        return self.o_proj.forward(bb, attn), k, v


class LlamaMLP(Module):
    def __init__(self, cfg: LlamaConfig):
        self.cfg = cfg
        if cfg.gated_mlp:
            self.gate_proj = _make_linear(cfg, cfg.hidden_size, cfg.intermediate_size)
        self.up_proj = _make_linear(cfg, cfg.hidden_size, cfg.intermediate_size)
        self.down_proj = _make_linear(cfg, cfg.intermediate_size, cfg.hidden_size)

    def forward(self, bb: BlockBuilder, x: Expr) -> Expr:
        cfg = self.cfg
        act = ops.silu if cfg.act == "silu" else ops.gelu
        if cfg.gated_mlp:
            gate = bb.emit(act(self.gate_proj.forward(bb, x)))
            up = self.up_proj.forward(bb, x)
            hidden = bb.emit(ops.multiply(gate, up))
        else:
            hidden = bb.emit(act(self.up_proj.forward(bb, x)))
        return self.down_proj.forward(bb, hidden)


class LlamaDecoderLayer(Module):
    def __init__(self, cfg: LlamaConfig):
        self.cfg = cfg
        self.input_norm = _make_norm(cfg, cfg.hidden_size)
        self.attn = LlamaAttention(cfg)
        self.post_norm = _make_norm(cfg, cfg.hidden_size)
        self.mlp = LlamaMLP(cfg)

    def forward(self, bb, x, k_cache, v_cache, b, s, m):
        attn_out, k_full, v_full = self.attn.forward(
            bb, self.input_norm.forward(bb, x), k_cache, v_cache, b, s, m
        )
        return self._residual(bb, x, attn_out), k_full, v_full

    def forward_paged(self, bb, x, k_pages, v_pages, block_table, lengths, b):
        attn_out, k_new, v_new = self.attn.forward_paged(
            bb, self.input_norm.forward(bb, x), k_pages, v_pages,
            block_table, lengths, b,
        )
        return self._residual(bb, x, attn_out), k_new, v_new

    def forward_prefill_paged(self, bb, x, k_pages, v_pages, block_table,
                              past, b, s, m):
        attn_out, k_new, v_new = self.attn.forward_prefill_paged(
            bb, self.input_norm.forward(bb, x), k_pages, v_pages,
            block_table, past, b, s, m,
        )
        return self._residual(bb, x, attn_out), k_new, v_new

    def forward_verify_paged(self, bb, x, k_pages, v_pages, block_table,
                             lengths, spec_lens, b, s):
        attn_out, k_new, v_new = self.attn.forward_verify_paged(
            bb, self.input_norm.forward(bb, x), k_pages, v_pages,
            block_table, lengths, spec_lens, b, s,
        )
        return self._residual(bb, x, attn_out), k_new, v_new

    def _residual(self, bb, x, attn_out):
        if self.cfg.parallel_residual:
            mlp_out = self.mlp.forward(bb, self.post_norm.forward(bb, x))
            x = bb.emit(ops.add(bb.emit(ops.add(x, attn_out)), mlp_out))
        else:
            x = bb.emit(ops.add(x, attn_out))
            mlp_out = self.mlp.forward(bb, self.post_norm.forward(bb, x))
            x = bb.emit(ops.add(x, mlp_out))
        return x


class LlamaForCausalLM(Module):
    def __init__(self, cfg: LlamaConfig):
        self.cfg = cfg
        self.embed = Embedding(cfg.vocab_size, cfg.hidden_size, dtype=cfg.dtype)
        self.layers = [LlamaDecoderLayer(cfg) for _ in range(cfg.num_layers)]
        self.final_norm = _make_norm(cfg, cfg.hidden_size)
        if not cfg.tie_embeddings:
            self.lm_head = _make_linear(cfg, cfg.hidden_size, cfg.vocab_size)

    def forward(self, bb: BlockBuilder, tokens: Expr, caches: List[Expr],
                b, s, m) -> Expr:
        cfg = self.cfg
        x = self.embed.forward(bb, tokens)  # (b, s, hidden)
        if cfg.scale_embeddings:
            scale = const(np.asarray(math.sqrt(cfg.hidden_size)), cfg.dtype)
            x = bb.emit(ops.multiply(x, scale))
        return self.forward_hidden(bb, x, caches, b, s, m)

    def forward_hidden(self, bb: BlockBuilder, x: Expr, caches: List[Expr],
                       b, s, m) -> Expr:
        """Run the decoder stack from hidden states (LLaVA feeds image
        embeddings here directly)."""
        cfg = self.cfg
        new_caches: List[Expr] = []
        for layer, (k_cache, v_cache) in zip(
            self.layers, zip(caches[0::2], caches[1::2])
        ):
            x, k_full, v_full = layer.forward(bb, x, k_cache, v_cache, b, s, m)
            new_caches.extend([k_full, v_full])

        x = self.final_norm.forward(bb, x)
        # Only the last position feeds the LM head (per-token decode cost).
        last_idx = bb.emit(ops.arange(1, start=s - 1, dtype="i64"))
        last = bb.emit(ops.take(x, last_idx, axis=1))  # (b, 1, hidden)
        logits = self._logits(bb, last)

        from ..core.expr import Tuple as TupleExpr

        return bb.emit(TupleExpr([logits] + new_caches))

    def forward_paged(self, bb: BlockBuilder, tokens: Expr, block_table: Expr,
                      lengths: Expr, caches: List[Expr], b) -> Expr:
        """Single-token decode over the paged KV pool (repro.serve).

        ``caches`` holds the per-layer page pools (k_pages_l, v_pages_l);
        the result tuple is ``(logits, k_new_0, v_new_0, ...)`` — the new
        K/V slices the host writes back into each sequence's pages.
        """
        cfg = self.cfg
        x = self.embed.forward(bb, tokens)  # (b, 1, hidden)
        if cfg.scale_embeddings:
            scale = const(np.asarray(math.sqrt(cfg.hidden_size)), cfg.dtype)
            x = bb.emit(ops.multiply(x, scale))
        new_slices: List[Expr] = []
        for layer, (k_pages, v_pages) in zip(
            self.layers, zip(caches[0::2], caches[1::2])
        ):
            x, k_new, v_new = layer.forward_paged(
                bb, x, k_pages, v_pages, block_table, lengths, b
            )
            new_slices.extend([k_new, v_new])

        x = self.final_norm.forward(bb, x)
        logits = self._logits(bb, x)  # s == 1: every position is the last

        from ..core.expr import Tuple as TupleExpr

        return bb.emit(TupleExpr([logits] + new_slices))

    def forward_verify_paged(self, bb: BlockBuilder, tokens: Expr,
                             block_table: Expr, lengths: Expr,
                             spec_lens: Expr, caches: List[Expr],
                             b, s) -> Expr:
        """Speculative verify over the paged KV pool (repro.serve).

        Unlike decode/prefill, *every* position feeds the LM head: the
        engine needs the target's logits at each speculative position to
        judge the draft's proposals, so the result tuple's logits entry
        is (b, s, vocab).  New K/V slices ride along as usual; the host
        appends only the accepted prefix per sequence.
        """
        cfg = self.cfg
        x = self.embed.forward(bb, tokens)  # (b, s, hidden)
        if cfg.scale_embeddings:
            scale = const(np.asarray(math.sqrt(cfg.hidden_size)), cfg.dtype)
            x = bb.emit(ops.multiply(x, scale))
        new_slices: List[Expr] = []
        for layer, (k_pages, v_pages) in zip(
            self.layers, zip(caches[0::2], caches[1::2])
        ):
            x, k_new, v_new = layer.forward_verify_paged(
                bb, x, k_pages, v_pages, block_table, lengths, spec_lens,
                b, s,
            )
            new_slices.extend([k_new, v_new])

        x = self.final_norm.forward(bb, x)
        logits = self._logits(bb, x)  # all s positions are candidates

        from ..core.expr import Tuple as TupleExpr

        return bb.emit(TupleExpr([logits] + new_slices))

    def forward_prefill_paged(self, bb: BlockBuilder, tokens: Expr,
                              block_table: Expr, past: Expr,
                              caches: List[Expr], b, s, m) -> Expr:
        """Chunked prefill writing straight into the paged pool.

        Mirrors :meth:`forward` (same embedding, rotary offsets, causal
        attention over ``m`` cached + ``s`` current positions, and
        last-position logits) with the KV reads gathered through the
        block table instead of a contiguous cache; the result tuple is
        ``(logits, k_new_0, v_new_0, ...)`` — the chunk's K/V slices the
        host writes into each sequence's pages.
        """
        cfg = self.cfg
        x = self.embed.forward(bb, tokens)  # (b, s, hidden)
        if cfg.scale_embeddings:
            scale = const(np.asarray(math.sqrt(cfg.hidden_size)), cfg.dtype)
            x = bb.emit(ops.multiply(x, scale))
        new_slices: List[Expr] = []
        for layer, (k_pages, v_pages) in zip(
            self.layers, zip(caches[0::2], caches[1::2])
        ):
            x, k_new, v_new = layer.forward_prefill_paged(
                bb, x, k_pages, v_pages, block_table, past, b, s, m
            )
            new_slices.extend([k_new, v_new])

        x = self.final_norm.forward(bb, x)
        # Only the last position feeds the LM head (per-token decode cost).
        last_idx = bb.emit(ops.arange(1, start=s - 1, dtype="i64"))
        last = bb.emit(ops.take(x, last_idx, axis=1))  # (b, 1, hidden)
        logits = self._logits(bb, last)

        from ..core.expr import Tuple as TupleExpr

        return bb.emit(TupleExpr([logits] + new_slices))

    def _logits(self, bb: BlockBuilder, last: Expr) -> Expr:
        cfg = self.cfg
        if cfg.tie_embeddings:
            logits = bb.emit(
                ops.matmul(last, self.embed.weight.var, transpose_b=True)
            )
        else:
            logits = self.lm_head.forward(bb, last)
        if cfg.dtype != "f32":
            logits = bb.emit(ops.astype(logits, "f32"))
        return logits


def _cache_annotations(cfg: LlamaConfig, b, m) -> dict:
    anns = {}
    for layer in range(cfg.num_layers):
        shape = (b, m, cfg.num_kv_heads, cfg.head_dim)
        anns[f"k_cache_{layer}"] = TensorAnn(shape, cfg.dtype)
        anns[f"v_cache_{layer}"] = TensorAnn(shape, cfg.dtype)
    return anns


def _page_annotations(cfg: LlamaConfig, page_size: int) -> dict:
    # The page pool is shared by every sequence; the pool size ``p`` is a
    # symbolic dim so one compile serves any VRAM budget.
    anns = {}
    for layer in range(cfg.num_layers):
        shape = ("p", page_size, cfg.num_kv_heads, cfg.head_dim)
        anns[f"k_pages_{layer}"] = TensorAnn(shape, cfg.dtype)
        anns[f"v_pages_{layer}"] = TensorAnn(shape, cfg.dtype)
    return anns


def build_llama(cfg: LlamaConfig,
                page_size: Optional[int] = None,
                tp: int = 1) -> ExportedModule:
    """Export prefill + decode functions for a decoder-only config.

    With ``page_size`` set, a third function ``decode_paged`` is exported:
    single-token decode over a paged KV pool with per-sequence block tables
    and cache lengths (the serving engine's ragged-batch entry point).

    With ``tp > 1`` the export is run through the sharding pass pair
    under a Megatron-style plan (column-parallel q/k/v and gate/up,
    row-parallel o/down, head-sharded KV) and comes back as a
    :class:`~repro.frontend.nn.ShardedExportedModule`: one SPMD module
    whose per-rank weights/pools are ``1/tp`` slices.  ``tp=1`` returns
    the exact unsharded export, untouched.
    """
    model = LlamaForCausalLM(cfg)

    def prefill(bb: BlockBuilder, tokens, *caches):
        b = bb.shape_var("b")
        s = bb.shape_var("s")
        m = bb.shape_var("m")
        return model.forward(bb, tokens, list(caches), b, s, m)

    def decode(bb: BlockBuilder, tokens, *caches):
        b = bb.shape_var("b")
        m = bb.shape_var("m")
        return model.forward(bb, tokens, list(caches), b, sym.IntImm(1), m)

    spec = {
        "prefill": (
            {
                "tokens": TensorAnn(("b", "s"), "i64"),
                **_cache_annotations(cfg, "b", "m"),
            },
            prefill,
        ),
        "decode": (
            {
                "tokens": TensorAnn(("b", 1), "i64"),
                **_cache_annotations(cfg, "b", "m"),
            },
            decode,
        ),
    }
    if page_size is not None:
        def decode_paged(bb: BlockBuilder, tokens, block_table, lengths,
                         *caches):
            b = bb.shape_var("b")
            return model.forward_paged(
                bb, tokens, block_table, lengths, list(caches), b
            )

        spec["decode_paged"] = (
            {
                "tokens": TensorAnn(("b", 1), "i64"),
                "block_table": TensorAnn(("b", "w"), "i64"),
                "lengths": TensorAnn(("b",), "i64"),
                **_page_annotations(cfg, page_size),
            },
            decode_paged,
        )

        def prefill_paged(bb: BlockBuilder, tokens, block_table, past,
                          *caches):
            b = bb.shape_var("b")
            s = bb.shape_var("s")
            m = bb.shape_var("m")
            return model.forward_prefill_paged(
                bb, tokens, block_table, past, list(caches), b, s, m
            )

        # ``past`` is a rank-1 anchor whose *length* is the shared cached
        # context m of every sequence in the batch — the VM binds m from
        # its shape exactly as dense prefill binds it from cache shapes.
        spec["prefill_paged"] = (
            {
                "tokens": TensorAnn(("b", "s"), "i64"),
                "block_table": TensorAnn(("b", "w"), "i64"),
                "past": TensorAnn(("m",), "i64"),
                **_page_annotations(cfg, page_size),
            },
            prefill_paged,
        )

        def verify_paged(bb: BlockBuilder, tokens, block_table, lengths,
                         spec_lens, *caches):
            b = bb.shape_var("b")
            s = bb.shape_var("s")
            return model.forward_verify_paged(
                bb, tokens, block_table, lengths, spec_lens,
                list(caches), b, s,
            )

        # Ragged multi-token decode: tokens is padded to the batch's max
        # speculative width s, spec_lens carries each sequence's valid
        # width (s_i <= s), and lengths the committed cache length the
        # rows start at.  Logits come back for every position.
        spec["verify_paged"] = (
            {
                "tokens": TensorAnn(("b", "s"), "i64"),
                "block_table": TensorAnn(("b", "w"), "i64"),
                "lengths": TensorAnn(("b",), "i64"),
                "spec_lens": TensorAnn(("b",), "i64"),
                **_page_annotations(cfg, page_size),
            },
            verify_paged,
        )
    exported = export_module(model, spec)
    if tp == 1:
        return exported

    from ..dist.shard import make_llama_tp_plan
    from ..transform import LowerSharding, PropagateSharding

    plan = make_llama_tp_plan(cfg, tp)
    mod = PropagateSharding(plan)(exported.mod)
    mod = LowerSharding(plan)(mod)
    return ShardedExportedModule(mod, model, exported.param_order, plan)


def draft_config(cfg: LlamaConfig) -> LlamaConfig:
    """Derive the paired draft model for speculative decoding.

    A thin single-layer sibling sharing the target's vocabulary, page
    layout-relevant head geometry and context — small enough that a
    draft step costs a fraction of a target decode on the analytical
    clock, which is where the speculative TPOT win comes from.  The
    name is derived from the target's, so the (target, draft) pair
    forms one compile-cache entry per device.
    """
    return replace(
        cfg,
        name=f"{cfg.name}-draft",
        hidden_size=max(8, cfg.hidden_size // 4),
        intermediate_size=max(16, cfg.intermediate_size // 4),
        num_layers=1,
        num_heads=1,
        num_kv_heads=1,
    )


TINY_LLAMA_DRAFT = draft_config(TINY_LLAMA)


def empty_caches(cfg: LlamaConfig, batch: int, concrete: bool):
    """Zero-length KV caches to start generation."""
    from ..runtime import NDArray

    caches = []
    for _ in range(cfg.num_layers):
        shape = (batch, 0, cfg.num_kv_heads, cfg.head_dim)
        for _kv in range(2):
            if concrete:
                from .. import dtypes

                caches.append(
                    NDArray.from_numpy(
                        np.zeros(shape, dtype=dtypes.to_numpy(cfg.dtype))
                    )
                )
            else:
                caches.append(NDArray.abstract(shape, cfg.dtype))
    return caches
