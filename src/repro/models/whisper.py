"""Whisper-style encoder-decoder ASR model (paper §5.4, Fig. 19).

Architecture follows Whisper [32]: a transformer audio encoder over mel
spectrogram frames and a transformer text decoder with causal self-
attention (KV-cached) plus cross-attention over the encoder states.

Substitution (DESIGN.md §2): Whisper's two stride-2 Conv1d frontend layers
are replaced by frame stacking (reshape pairs of frames) followed by a
linear projection — the same 2x temporal downsampling and the same
downstream tensor shapes, without a convolution operator.  The decode loop,
cross-attention and KV-cache dynamics (what Fig. 19 measures) are
unaffected.

Exported functions:

* ``encode(mel (b, frames, n_mel))`` → per-layer cross-attention K/V
  (computed once per utterance, as real Whisper does);
* ``decode(tokens (b, 1), self K/V caches, cross K/V)`` → logits + updated
  self caches.

With ``build_whisper(cfg, page_size=...)`` the serving entry points are
exported as well: ``encode_chunk`` (mel frames → encoder hidden states),
``cross_project`` (encoder states → per-layer cross K/V slices the engine
writes into pool pages, once, never appended) and ``decode_paged`` (self-
attention KV gathered from the shared page pool via ``paged_prefill``,
cross-attention over pool-resident encoder K/V via
``paged_cross_attention``) — asserted bit-identical to the dense decode
path in ``tests/models/test_whisper_paged.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .. import ops, sym
from ..core import BlockBuilder, TensorAnn
from ..core.expr import Expr, ShapeExpr
from ..core.expr import Tuple as TupleExpr
from ..frontend.nn import (
    Embedding,
    ExportedModule,
    LayerNorm,
    Linear,
    Module,
    export_module,
)


@dataclass
class WhisperConfig:
    name: str
    d_model: int
    encoder_layers: int
    decoder_layers: int
    num_heads: int
    ffn_dim: int
    vocab_size: int
    n_mel: int
    max_frames: int  # mel frames for 30 s of audio
    max_target: int = 448
    dtype: str = "f32"

    @property
    def head_dim(self) -> int:
        return self.d_model // self.num_heads

    @property
    def enc_positions(self) -> int:
        return self.max_frames // 2  # 2x frontend downsampling


WHISPER_LARGE_V3 = WhisperConfig(
    name="Whisper-large-v3", d_model=1280, encoder_layers=32,
    decoder_layers=32, num_heads=20, ffn_dim=5120, vocab_size=51866,
    n_mel=128, max_frames=3000, dtype="f16",
)

TINY_WHISPER = WhisperConfig(
    name="tiny-whisper", d_model=16, encoder_layers=2, decoder_layers=2,
    num_heads=2, ffn_dim=32, vocab_size=48, n_mel=8, max_frames=12,
    max_target=16,
)


class WhisperMLP(Module):
    def __init__(self, cfg: WhisperConfig):
        self.fc1 = Linear(cfg.d_model, cfg.ffn_dim, bias=True, dtype=cfg.dtype)
        self.fc2 = Linear(cfg.ffn_dim, cfg.d_model, bias=True, dtype=cfg.dtype)

    def forward(self, bb, x):
        return self.fc2.forward(bb, bb.emit(ops.gelu(self.fc1.forward(bb, x))))


class WhisperSelfAttention(Module):
    def __init__(self, cfg: WhisperConfig):
        self.cfg = cfg
        d = cfg.d_model
        self.q_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.k_proj = Linear(d, d, bias=False, dtype=cfg.dtype)
        self.v_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.out_proj = Linear(d, d, bias=True, dtype=cfg.dtype)

    def project_qkv(self, bb, x, b, s):
        cfg = self.cfg
        h, d = cfg.num_heads, cfg.head_dim
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, x), ShapeExpr([b, s, h, d])))
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, x), ShapeExpr([b, s, h, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, x), ShapeExpr([b, s, h, d])))
        return q, k, v

    def forward_encoder(self, bb, x, b, s):
        cfg = self.cfg
        q, k, v = self.project_qkv(bb, x, b, s)
        attn = bb.emit(ops.attention(q, k, v, causal=False))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, cfg.d_model])))
        return self.out_proj.forward(bb, attn)

    def forward_decoder(self, bb, x, k_cache, v_cache, b, s):
        cfg = self.cfg
        q, k, v = self.project_qkv(bb, x, b, s)
        k_full = bb.emit(ops.concat([k_cache, k], axis=1))
        v_full = bb.emit(ops.concat([v_cache, v], axis=1))
        attn = bb.emit(ops.attention(q, k_full, v_full, causal=True))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, cfg.d_model])))
        return self.out_proj.forward(bb, attn), k_full, v_full

    def forward_decoder_paged(self, bb, x, k_pages, v_pages, block_table,
                              past, b, s):
        """Decoder self-attention against the shared page pool.

        Mirrors :meth:`forward_decoder` with the concat + causal attention
        replaced by ``paged_prefill`` (bit-exact against the dense path).
        Returns the new K/V slices for the host to write into the pool.
        """
        cfg = self.cfg
        q, k, v = self.project_qkv(bb, x, b, s)
        attn = bb.emit(ops.paged_prefill(
            q, k_pages, v_pages, block_table, past, k, v
        ))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, cfg.d_model])))
        return self.out_proj.forward(bb, attn), k, v


class WhisperCrossAttention(Module):
    def __init__(self, cfg: WhisperConfig):
        self.cfg = cfg
        d = cfg.d_model
        self.q_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.k_proj = Linear(d, d, bias=False, dtype=cfg.dtype)
        self.v_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.out_proj = Linear(d, d, bias=True, dtype=cfg.dtype)

    def project_kv(self, bb, enc_states, b, t):
        cfg = self.cfg
        h, d = cfg.num_heads, cfg.head_dim
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, enc_states),
                                ShapeExpr([b, t, h, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, enc_states),
                                ShapeExpr([b, t, h, d])))
        return k, v

    def forward(self, bb, x, cross_k, cross_v, b, s):
        cfg = self.cfg
        h, d = cfg.num_heads, cfg.head_dim
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, x), ShapeExpr([b, s, h, d])))
        attn = bb.emit(ops.attention(q, cross_k, cross_v, causal=False))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, cfg.d_model])))
        return self.out_proj.forward(bb, attn)

    def forward_paged(self, bb, x, k_pages, v_pages, cross_table, enc, b, s):
        """Cross-attention over pool-resident encoder K/V.

        The encoder K/V was written to pages once by ``cross_project``;
        every decode step gathers it through the cross block table.
        Bit-exact against :meth:`forward` over the contiguous cross K/V.
        """
        cfg = self.cfg
        h, d = cfg.num_heads, cfg.head_dim
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, x), ShapeExpr([b, s, h, d])))
        attn = bb.emit(ops.paged_cross_attention(
            q, k_pages, v_pages, cross_table, enc
        ))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, s, cfg.d_model])))
        return self.out_proj.forward(bb, attn)


class WhisperEncoderLayer(Module):
    def __init__(self, cfg: WhisperConfig):
        self.norm1 = LayerNorm(cfg.d_model, dtype=cfg.dtype)
        self.attn = WhisperSelfAttention(cfg)
        self.norm2 = LayerNorm(cfg.d_model, dtype=cfg.dtype)
        self.mlp = WhisperMLP(cfg)

    def forward(self, bb, x, b, s):
        attn = self.attn.forward_encoder(bb, self.norm1.forward(bb, x), b, s)
        x = bb.emit(ops.add(x, attn))
        mlp = self.mlp.forward(bb, self.norm2.forward(bb, x))
        return bb.emit(ops.add(x, mlp))


class WhisperDecoderLayer(Module):
    def __init__(self, cfg: WhisperConfig):
        self.norm1 = LayerNorm(cfg.d_model, dtype=cfg.dtype)
        self.self_attn = WhisperSelfAttention(cfg)
        self.norm2 = LayerNorm(cfg.d_model, dtype=cfg.dtype)
        self.cross_attn = WhisperCrossAttention(cfg)
        self.norm3 = LayerNorm(cfg.d_model, dtype=cfg.dtype)
        self.mlp = WhisperMLP(cfg)

    def forward(self, bb, x, k_cache, v_cache, cross_k, cross_v, b, s):
        attn, k_full, v_full = self.self_attn.forward_decoder(
            bb, self.norm1.forward(bb, x), k_cache, v_cache, b, s
        )
        x = bb.emit(ops.add(x, attn))
        cross = self.cross_attn.forward(
            bb, self.norm2.forward(bb, x), cross_k, cross_v, b, s
        )
        x = bb.emit(ops.add(x, cross))
        mlp = self.mlp.forward(bb, self.norm3.forward(bb, x))
        return bb.emit(ops.add(x, mlp)), k_full, v_full

    def forward_paged(self, bb, x, k_pages, v_pages, block_table, past,
                      cross_table, enc, b, s):
        """Paged decoder layer: self-attn KV and cross-attn KV both live
        in the *same* per-layer page pool, addressed by separate block
        tables (the self stream grows; the cross stream was written once
        by ``cross_project`` and never appends)."""
        attn, k_new, v_new = self.self_attn.forward_decoder_paged(
            bb, self.norm1.forward(bb, x), k_pages, v_pages, block_table,
            past, b, s,
        )
        x = bb.emit(ops.add(x, attn))
        cross = self.cross_attn.forward_paged(
            bb, self.norm2.forward(bb, x), k_pages, v_pages, cross_table,
            enc, b, s,
        )
        x = bb.emit(ops.add(x, cross))
        mlp = self.mlp.forward(bb, self.norm3.forward(bb, x))
        return bb.emit(ops.add(x, mlp)), k_new, v_new


class WhisperModel(Module):
    def __init__(self, cfg: WhisperConfig):
        self.cfg = cfg
        # Frontend substitution: frame-stack + linear replaces Conv1d x2.
        self.frontend = Linear(2 * cfg.n_mel, cfg.d_model, bias=True, dtype=cfg.dtype)
        self.enc_pos = Embedding(cfg.enc_positions, cfg.d_model, dtype=cfg.dtype)
        self.encoder = [WhisperEncoderLayer(cfg) for _ in range(cfg.encoder_layers)]
        self.enc_norm = LayerNorm(cfg.d_model, dtype=cfg.dtype)

        self.token_embed = Embedding(cfg.vocab_size, cfg.d_model, dtype=cfg.dtype)
        self.dec_pos = Embedding(cfg.max_target, cfg.d_model, dtype=cfg.dtype)
        self.decoder = [WhisperDecoderLayer(cfg) for _ in range(cfg.decoder_layers)]
        self.dec_norm = LayerNorm(cfg.d_model, dtype=cfg.dtype)

    # -- encoder ------------------------------------------------------------------

    def encode_hidden(self, bb: BlockBuilder, mel: Expr, b, frames) -> Expr:
        """Frontend + encoder stack: mel frames → hidden states (b, t, d)."""
        cfg = self.cfg
        t = sym.simplify(frames // 2)
        stacked = bb.emit(ops.reshape(mel, ShapeExpr([b, t, 2 * cfg.n_mel])))
        x = self.frontend.forward(bb, stacked)
        pos_ids = bb.emit(ops.arange(t, dtype="i64"))
        pos = self.enc_pos.forward(bb, pos_ids)  # (t, d)
        x = bb.emit(ops.add(x, pos))
        for layer in self.encoder:
            x = layer.forward(bb, x, b, t)
        return self.enc_norm.forward(bb, x)

    def cross_project(self, bb: BlockBuilder, x: Expr, b, t) -> Expr:
        """Per-layer cross-attention K/V slices from encoder states."""
        outputs: List[Expr] = []
        for layer in self.decoder:
            ck, cv = layer.cross_attn.project_kv(bb, x, b, t)
            outputs.extend([ck, cv])
        return bb.emit(TupleExpr(outputs))

    def encode(self, bb: BlockBuilder, mel: Expr, b, frames) -> Expr:
        t = sym.simplify(frames // 2)
        x = self.encode_hidden(bb, mel, b, frames)
        # Precompute per-layer cross-attention K/V from the encoder states.
        return self.cross_project(bb, x, b, t)

    # -- decoder -------------------------------------------------------------------

    def decode(self, bb: BlockBuilder, tokens: Expr, self_caches: List[Expr],
               cross_kv: List[Expr], b, s, m) -> Expr:
        cfg = self.cfg
        x = self.token_embed.forward(bb, tokens)
        pos_ids = bb.emit(ops.arange(s, start=m, dtype="i64"))
        pos = self.dec_pos.forward(bb, pos_ids)
        x = bb.emit(ops.add(x, pos))
        new_caches: List[Expr] = []
        for i, layer in enumerate(self.decoder):
            x, k_full, v_full = layer.forward(
                bb, x, self_caches[2 * i], self_caches[2 * i + 1],
                cross_kv[2 * i], cross_kv[2 * i + 1], b, s,
            )
            new_caches.extend([k_full, v_full])
        x = self.dec_norm.forward(bb, x)
        last_idx = bb.emit(ops.arange(1, start=s - 1, dtype="i64"))
        last = bb.emit(ops.take(x, last_idx, axis=1))
        logits = bb.emit(
            ops.matmul(last, self.token_embed.weight.var, transpose_b=True)
        )
        if cfg.dtype != "f32":
            logits = bb.emit(ops.astype(logits, "f32"))
        return bb.emit(TupleExpr([logits] + new_caches))

    def decode_paged(self, bb: BlockBuilder, tokens: Expr, block_table: Expr,
                     past: Expr, cross_table: Expr, enc: Expr,
                     pages: List[Expr], b, s, m) -> Expr:
        """Decode against the shared page pool.

        ``past`` and ``enc`` are rank-1 anchors binding the cached self-
        context ``m`` and the encoder context ``t``; ``block_table`` /
        ``cross_table`` address the self and cross streams of the same
        per-layer pools.  Mirrors :meth:`decode` op for op (bit-exact).
        """
        cfg = self.cfg
        x = self.token_embed.forward(bb, tokens)
        pos_ids = bb.emit(ops.arange(s, start=m, dtype="i64"))
        pos = self.dec_pos.forward(bb, pos_ids)
        x = bb.emit(ops.add(x, pos))
        new_slices: List[Expr] = []
        for i, layer in enumerate(self.decoder):
            x, k_new, v_new = layer.forward_paged(
                bb, x, pages[2 * i], pages[2 * i + 1], block_table, past,
                cross_table, enc, b, s,
            )
            new_slices.extend([k_new, v_new])
        x = self.dec_norm.forward(bb, x)
        last_idx = bb.emit(ops.arange(1, start=s - 1, dtype="i64"))
        last = bb.emit(ops.take(x, last_idx, axis=1))
        logits = bb.emit(
            ops.matmul(last, self.token_embed.weight.var, transpose_b=True)
        )
        if cfg.dtype != "f32":
            logits = bb.emit(ops.astype(logits, "f32"))
        return bb.emit(TupleExpr([logits] + new_slices))


def build_whisper(cfg: WhisperConfig,
                  page_size: Optional[int] = None) -> ExportedModule:
    model = WhisperModel(cfg)
    h, d = cfg.num_heads, cfg.head_dim

    def encode(bb: BlockBuilder, mel):
        b = bb.shape_var("b")
        frames = bb.shape_var("f")
        return model.encode(bb, mel, b, frames)

    def decode(bb: BlockBuilder, tokens, *rest):
        b = bb.shape_var("b")
        m = bb.shape_var("m")
        n_dec = cfg.decoder_layers
        self_caches = list(rest[: 2 * n_dec])
        cross_kv = list(rest[2 * n_dec:])
        return model.decode(bb, tokens, self_caches, cross_kv, b, sym.IntImm(1), m)

    decode_inputs = {"tokens": TensorAnn(("b", 1), "i64")}
    for i in range(cfg.decoder_layers):
        decode_inputs[f"k_cache_{i}"] = TensorAnn(("b", "m", h, d), cfg.dtype)
        decode_inputs[f"v_cache_{i}"] = TensorAnn(("b", "m", h, d), cfg.dtype)
    for i in range(cfg.decoder_layers):
        decode_inputs[f"cross_k_{i}"] = TensorAnn(("b", "t", h, d), cfg.dtype)
        decode_inputs[f"cross_v_{i}"] = TensorAnn(("b", "t", h, d), cfg.dtype)

    spec = {
        "encode": ({"mel": TensorAnn(("b", "f", cfg.n_mel), cfg.dtype)}, encode),
        "decode": (decode_inputs, decode),
    }

    if page_size is not None:
        def encode_chunk(bb: BlockBuilder, mel):
            b = bb.shape_var("b")
            frames = bb.shape_var("f")
            return model.encode_hidden(bb, mel, b, frames)

        def cross_project(bb: BlockBuilder, enc_states):
            b = bb.shape_var("b")
            t = bb.shape_var("t")
            return model.cross_project(bb, enc_states, b, t)

        def decode_paged(bb: BlockBuilder, tokens, block_table, past,
                         cross_table, enc, *pages):
            b = bb.shape_var("b")
            m = bb.shape_var("m")
            return model.decode_paged(
                bb, tokens, block_table, past, cross_table, enc,
                list(pages), b, sym.IntImm(1), m,
            )

        paged_inputs = {
            "tokens": TensorAnn(("b", 1), "i64"),
            "block_table": TensorAnn(("b", "w"), "i64"),
            # Rank-1 anchors: lengths bind the cached self-context m and
            # the encoder context t at the function boundary.
            "past": TensorAnn(("m",), "i64"),
            "cross_table": TensorAnn(("b", "u"), "i64"),
            "enc": TensorAnn(("t",), "i64"),
        }
        for i in range(cfg.decoder_layers):
            shape = ("p", page_size, h, d)
            paged_inputs[f"k_pages_{i}"] = TensorAnn(shape, cfg.dtype)
            paged_inputs[f"v_pages_{i}"] = TensorAnn(shape, cfg.dtype)

        spec["encode_chunk"] = (
            {"mel": TensorAnn(("b", "f", cfg.n_mel), cfg.dtype)},
            encode_chunk,
        )
        spec["cross_project"] = (
            {"enc_states": TensorAnn(("b", "t", cfg.d_model), cfg.dtype)},
            cross_project,
        )
        spec["decode_paged"] = (paged_inputs, decode_paged)

    return export_module(model, spec)
