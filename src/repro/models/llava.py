"""LLaVA-style large multimodal model (paper §5.4, Fig. 20).

LLaVA [28] couples a pre-trained CLIP ViT visual encoder with a Vicuna
LLM through a two-layer MLP projector.  Here the vision tower is a ViT
encoder over pre-extracted image patches (the patchify convolution is a
linear projection of flattened patches — which is exactly what a stride-14
14x14 convolution is), the projector maps visual tokens into the LLM
embedding space, and the language model is the Vicuna-class Llama from
:mod:`repro.models.llama` with an extra ``prefill_embeds`` entry point that
accepts image embeddings in place of token embeddings.

Exported functions:

* ``encode_image(patches (b, np, patch_dim))`` → visual embeddings
  ``(b, np, llm_hidden)``;
* ``prefill_embeds(embeds, caches)`` → logits + caches (image prefill);
* ``prefill`` / ``decode`` — the standard LLM functions (text + generation).
"""

from __future__ import annotations

from dataclasses import dataclass
from .. import ops, sym
from ..core import BlockBuilder, TensorAnn
from ..core.expr import ShapeExpr
from ..frontend.nn import (
    Embedding,
    ExportedModule,
    LayerNorm,
    Linear,
    Module,
    export_module,
)
from .llama import (
    LLAMA2_7B,
    TINY_LLAMA,
    LlamaConfig,
    LlamaForCausalLM,
    _cache_annotations,
)


@dataclass
class VisionConfig:
    hidden_size: int
    num_layers: int
    num_heads: int
    ffn_dim: int
    num_patches: int
    patch_dim: int  # flattened patch pixels (14*14*3 for CLIP ViT-L/14)
    dtype: str = "f32"

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads


@dataclass
class LlavaConfig:
    name: str
    vision: VisionConfig
    llm: LlamaConfig


CLIP_VIT_L14 = VisionConfig(
    hidden_size=1024, num_layers=24, num_heads=16, ffn_dim=4096,
    num_patches=576, patch_dim=14 * 14 * 3, dtype="f16",
)

LLAVA_7B = LlavaConfig(name="LLaVA-7B (CLIP ViT-L/14 + Vicuna-7B)",
                       vision=CLIP_VIT_L14, llm=LLAMA2_7B)

TINY_LLAVA = LlavaConfig(
    name="tiny-llava",
    vision=VisionConfig(hidden_size=16, num_layers=2, num_heads=2,
                        ffn_dim=32, num_patches=4, patch_dim=12),
    llm=TINY_LLAMA,
)


class ViTLayer(Module):
    def __init__(self, cfg: VisionConfig):
        self.cfg = cfg
        d = cfg.hidden_size
        self.norm1 = LayerNorm(d, dtype=cfg.dtype)
        self.q_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.k_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.v_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.out_proj = Linear(d, d, bias=True, dtype=cfg.dtype)
        self.norm2 = LayerNorm(d, dtype=cfg.dtype)
        self.fc1 = Linear(d, cfg.ffn_dim, bias=True, dtype=cfg.dtype)
        self.fc2 = Linear(cfg.ffn_dim, d, bias=True, dtype=cfg.dtype)

    def forward(self, bb, x, b, t):
        cfg = self.cfg
        h, d = cfg.num_heads, cfg.head_dim
        normed = self.norm1.forward(bb, x)
        q = bb.emit(ops.reshape(self.q_proj.forward(bb, normed), ShapeExpr([b, t, h, d])))
        k = bb.emit(ops.reshape(self.k_proj.forward(bb, normed), ShapeExpr([b, t, h, d])))
        v = bb.emit(ops.reshape(self.v_proj.forward(bb, normed), ShapeExpr([b, t, h, d])))
        attn = bb.emit(ops.attention(q, k, v, causal=False))
        attn = bb.emit(ops.reshape(attn, ShapeExpr([b, t, cfg.hidden_size])))
        x = bb.emit(ops.add(x, self.out_proj.forward(bb, attn)))
        mlp = self.fc2.forward(
            bb, bb.emit(ops.gelu(self.fc1.forward(bb, self.norm2.forward(bb, x))))
        )
        return bb.emit(ops.add(x, mlp))


class VisionTower(Module):
    def __init__(self, cfg: VisionConfig):
        self.cfg = cfg
        self.patch_embed = Linear(cfg.patch_dim, cfg.hidden_size, bias=True,
                                  dtype=cfg.dtype)
        self.pos_embed = Embedding(cfg.num_patches, cfg.hidden_size, dtype=cfg.dtype)
        self.layers = [ViTLayer(cfg) for _ in range(cfg.num_layers)]
        self.post_norm = LayerNorm(cfg.hidden_size, dtype=cfg.dtype)

    def forward(self, bb, patches, b, t):
        x = self.patch_embed.forward(bb, patches)
        pos_ids = bb.emit(ops.arange(t, dtype="i64"))
        x = bb.emit(ops.add(x, self.pos_embed.forward(bb, pos_ids)))
        for layer in self.layers:
            x = layer.forward(bb, x, b, t)
        return self.post_norm.forward(bb, x)


class LlavaProjector(Module):
    def __init__(self, vision_dim: int, llm_dim: int, dtype: str):
        self.fc1 = Linear(vision_dim, llm_dim, bias=True, dtype=dtype)
        self.fc2 = Linear(llm_dim, llm_dim, bias=True, dtype=dtype)

    def forward(self, bb, x):
        return self.fc2.forward(bb, bb.emit(ops.gelu(self.fc1.forward(bb, x))))


class LlavaModel(Module):
    def __init__(self, cfg: LlavaConfig):
        self.cfg = cfg
        self.vision = VisionTower(cfg.vision)
        self.projector = LlavaProjector(
            cfg.vision.hidden_size, cfg.llm.hidden_size, cfg.llm.dtype
        )
        self.llm = LlamaForCausalLM(cfg.llm)


def build_llava(cfg: LlavaConfig) -> ExportedModule:
    model = LlavaModel(cfg)
    llm_cfg = cfg.llm

    def encode_image(bb: BlockBuilder, patches):
        b = bb.shape_var("b")
        t = bb.shape_var("t")
        feats = model.vision.forward(bb, patches, b, t)
        if cfg.vision.dtype != llm_cfg.dtype:
            feats = bb.emit(ops.astype(feats, llm_cfg.dtype))
        return model.projector.forward(bb, feats)

    def prefill_embeds(bb: BlockBuilder, embeds, *caches):
        b = bb.shape_var("b")
        s = bb.shape_var("s")
        m = bb.shape_var("m")
        return model.llm.forward_hidden(bb, embeds, list(caches), b, s, m)

    def prefill(bb: BlockBuilder, tokens, *caches):
        b = bb.shape_var("b")
        s = bb.shape_var("s")
        m = bb.shape_var("m")
        return model.llm.forward(bb, tokens, list(caches), b, s, m)

    def decode(bb: BlockBuilder, tokens, *caches):
        b = bb.shape_var("b")
        m = bb.shape_var("m")
        return model.llm.forward(bb, tokens, list(caches), b, sym.IntImm(1), m)

    spec = {
        "encode_image": (
            {"patches": TensorAnn(("b", "t", cfg.vision.patch_dim),
                                  cfg.vision.dtype)},
            encode_image,
        ),
        "prefill_embeds": (
            {
                "embeds": TensorAnn(("b", "s", llm_cfg.hidden_size), llm_cfg.dtype),
                **_cache_annotations(llm_cfg, "b", "m"),
            },
            prefill_embeds,
        ),
        "prefill": (
            {
                "tokens": TensorAnn(("b", "s"), "i64"),
                **_cache_annotations(llm_cfg, "b", "m"),
            },
            prefill,
        ),
        "decode": (
            {
                "tokens": TensorAnn(("b", 1), "i64"),
                **_cache_annotations(llm_cfg, "b", "m"),
            },
            decode,
        ),
    }
    return export_module(model, spec)
