"""Model zoo: the paper's evaluated model families."""

from .llama import (
    GEMMA_7B,
    LLAMA2_7B,
    LLAMA3_8B,
    PHI3_MINI,
    QWEN2_7B,
    REDPAJAMA_3B,
    TINY_GEMMA,
    TINY_LLAMA,
    TINY_LLAMA_DRAFT,
    TINY_NEOX,
    TINY_QWEN,
    LlamaConfig,
    LlamaForCausalLM,
    build_llama,
    draft_config,
    empty_caches,
)
from .whisper import TINY_WHISPER, WHISPER_LARGE_V3, WhisperConfig, build_whisper
from .denoise import DIT_BASE, TINY_DENOISE, DenoiseConfig, build_denoise
from .llava import CLIP_VIT_L14, LLAVA_7B, TINY_LLAVA, LlavaConfig, VisionConfig, build_llava
from .reference import ReferenceLlama

__all__ = [
    "GEMMA_7B",
    "LLAMA2_7B",
    "LLAMA3_8B",
    "LlamaConfig",
    "LlamaForCausalLM",
    "PHI3_MINI",
    "QWEN2_7B",
    "REDPAJAMA_3B",
    "ReferenceLlama",
    "TINY_GEMMA",
    "TINY_LLAMA",
    "TINY_LLAMA_DRAFT",
    "TINY_QWEN",
    "TINY_NEOX",
    "build_denoise",
    "build_llama",
    "build_llava",
    "draft_config",
    "build_whisper",
    "CLIP_VIT_L14",
    "DIT_BASE",
    "DenoiseConfig",
    "TINY_DENOISE",
    "LLAVA_7B",
    "LlavaConfig",
    "TINY_LLAVA",
    "TINY_WHISPER",
    "VisionConfig",
    "WHISPER_LARGE_V3",
    "WhisperConfig",
    "empty_caches",
]
