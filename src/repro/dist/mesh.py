"""Multi-device analytical runtime: N per-shard VMs in lockstep.

A :class:`MeshExecutor` owns one :class:`~repro.runtime.vm.VirtualMachine`
per shard, all interpreting the *same* SPMD executable (the sharding
passes emit one program; only weights and KV pools differ per rank).
Each VM carries a :class:`MeshContext` naming its rank, and the shared
:class:`~repro.dist.interconnect.Interconnect` that the ``ccl.*``
builtins charge.

**Clock discipline.**  Every :meth:`MeshExecutor.run` is a lockstep
iteration: all shards execute the function, then the executor applies
the synchronization barrier — every shard's clock advances to the max
over shards.  Collective costs are charged *inside* the run by the
builtins (every shard charges the same modeled ring time, which is how
a barrier behaves: nobody leaves the collective before the slowest
hop).  Under SPMD the per-shard costs are identical, so the barrier is
observably a no-op — but it is what makes the model honest when shards
diverge (e.g. rank-dependent workloads later).

**Modes.**  Abstract mode (serving, benchmarks) runs shards
sequentially — values never exist, so no rendezvous is needed and the
simulation stays single-threaded and cheap.  Concrete mode (correctness
tests) runs shards on real threads synchronized by a barrier-based
:class:`CollectiveChannel`; the combine order is fixed (rank 0..N−1) so
results are deterministic to the last bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..runtime.profiler import ExecutionStats
from ..runtime.vm import VirtualMachine, VMError
from .interconnect import Interconnect


@dataclass
class MeshContext:
    """Per-VM placement: which rank of which mesh this VM is."""

    rank: int
    world: int
    channel: Optional["CollectiveChannel"] = None


class CollectiveChannel:
    """Barrier-synchronized rendezvous for concrete collectives.

    ``exchange`` deposits this rank's contribution, waits for every
    peer, and returns the rank-ordered contribution list; each thread
    then computes the combined result independently (same inputs, same
    order — bitwise identical).  A second barrier keeps slot reuse safe
    for the next collective.  A failing shard aborts the barrier so
    peers fail fast instead of deadlocking.
    """

    def __init__(self, world: int, timeout_s: float = 60.0):
        if world < 2:
            raise ValueError("a collective channel needs world >= 2")
        self.world = world
        self._timeout = timeout_s
        self._barrier = threading.Barrier(world)
        self._contrib: List[Any] = [None] * world

    def exchange(self, rank: int, value) -> List[Any]:
        self._contrib[rank] = value
        try:
            self._barrier.wait(self._timeout)
            chunks = list(self._contrib)
            self._barrier.wait(self._timeout)
        except threading.BrokenBarrierError:
            raise VMError("collective aborted: a peer shard failed")
        return chunks

    def abort(self) -> None:
        self._barrier.abort()


class _MeshTracer:
    """Tracer facade over a mesh: single-VM consumers (engine telemetry)
    read the representative shard-0 stream; ``clear`` resets every
    shard so nothing accumulates unobserved."""

    capture_outputs = False

    def __init__(self, mesh: "MeshExecutor"):
        self._mesh = mesh

    @property
    def events(self):
        return self._mesh.vms[0].tracer.events

    def clear(self) -> None:
        for vm in self._mesh.vms:
            if vm.tracer is not None:
                vm.tracer.clear()


class MeshExecutor:
    """N per-shard VMs over one SPMD executable on a shared clock."""

    def __init__(
        self,
        executable,
        device,
        world: int,
        *,
        interconnect: Optional[Interconnect] = None,
        concrete: bool = False,
        enable_cuda_graph: bool = True,
    ):
        if world < 1:
            raise ValueError(f"world must be >= 1, got {world}")
        self.world = world
        self.device = device
        self.concrete = concrete
        self.interconnect = interconnect
        self.channel = (
            CollectiveChannel(world) if (concrete and world > 1) else None
        )
        self.vms: List[VirtualMachine] = []
        for rank in range(world):
            vm = VirtualMachine(
                executable, device, concrete=concrete,
                enable_cuda_graph=enable_cuda_graph,
            )
            vm.mesh = MeshContext(rank, world, self.channel)
            vm.interconnect = interconnect if world > 1 else None
            self.vms.append(vm)

    # -- execution ---------------------------------------------------------------

    def run(self, func_name: str, shard_args: Sequence[Sequence]) -> List:
        """One lockstep iteration: run ``func_name`` on every shard with
        its own argument list; returns per-rank results (rank order)."""
        if len(shard_args) != self.world:
            raise ValueError(
                f"expected {self.world} per-shard argument lists, "
                f"got {len(shard_args)}"
            )
        if self.channel is None:
            # Sequential: abstract shards never rendezvous on values, and
            # a world-1 mesh is just a single VM.
            outs = [
                vm.run(func_name, *args)
                for vm, args in zip(self.vms, shard_args)
            ]
        else:
            outs = self._run_threaded(func_name, shard_args)
        self._sync_clock()
        return outs

    def _run_threaded(self, func_name: str, shard_args) -> List:
        results: List = [None] * self.world
        errors: List[Optional[BaseException]] = [None] * self.world

        def worker(rank: int) -> None:
            try:
                results[rank] = self.vms[rank].run(
                    func_name, *shard_args[rank]
                )
            except BaseException as exc:  # propagate to the caller thread
                errors[rank] = exc
                self.channel.abort()

        threads = [
            threading.Thread(target=worker, args=(rank,), daemon=True)
            for rank in range(self.world)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        raised = [e for e in errors if e is not None]
        if raised:
            # Prefer the root cause over abort-induced collateral.
            primary = next(
                (e for e in raised if "collective aborted" not in str(e)),
                raised[0],
            )
            raise primary
        return results

    def _sync_clock(self) -> None:
        """Lockstep barrier: every shard's clock advances to the max."""
        t = max(vm.stats.time_s for vm in self.vms)
        for vm in self.vms:
            vm.stats.time_s = t

    # -- statistics --------------------------------------------------------------

    @property
    def shard_stats(self) -> List[ExecutionStats]:
        """The live per-shard stats objects (rank order)."""
        return [vm.stats for vm in self.vms]

    @property
    def stats(self) -> ExecutionStats:
        """Cluster view on the lockstep clock: wall-time fields take the
        max over shards, event counters and byte totals sum, and
        ``peak_bytes`` is the per-device high-water mark (each shard has
        its own VRAM) — the same conventions a multi-GPU profiler uses.
        Returns a fresh snapshot; window metering works exactly as with
        a single VM (``stats.copy()`` / ``stats.delta()``).  The combine
        semantics (wall-time max, counter sum) live in
        :meth:`ExecutionStats.merge_parallel`, shared with the serving
        cluster's fleet aggregation."""
        return ExecutionStats.merge_parallel(self.shard_stats)

    # -- tracing -----------------------------------------------------------------

    @property
    def tracer(self):
        return None if self.vms[0].tracer is None else _MeshTracer(self)

    @tracer.setter
    def tracer(self, value) -> None:
        if value is None:
            for vm in self.vms:
                vm.tracer = None
        elif isinstance(value, _MeshTracer):
            pass  # restoring the facade: per-shard recorders already live
        else:
            # One recorder per shard: rank 0 keeps the caller's object so
            # single-VM consumers see the representative stream.
            self.vms[0].tracer = value
            for vm in self.vms[1:]:
                vm.tracer = type(value)()

    def merged_events(self) -> List[Tuple[int, Any]]:
        """Provenance-preserving merged trace: ``(rank, event)`` pairs
        from every shard's recorder, ordered by timestamp then rank."""
        merged: List[Tuple[int, Any]] = []
        for rank, vm in enumerate(self.vms):
            if vm.tracer is not None:
                merged.extend((rank, e) for e in vm.tracer.events)
        merged.sort(key=lambda re: (re[1].ts_s, re[0]))
        return merged


class MeshVM:
    """:class:`~repro.runtime.vm.VirtualMachine`-shaped facade over a
    mesh, for SPMD serving.

    The serving engine meters everything through one ``vm`` object
    (``run`` / ``stats`` windows / ``tracer`` attach-detach).  Under
    tensor parallelism that object is a whole mesh: ``run`` issues the
    same (per-shard-shaped) abstract arguments to every rank and returns
    the rank-0 result, and ``stats`` reads as the merged lockstep
    snapshot, so scheduler, prefix cache, and spec decode run unchanged
    on top.
    """

    def __init__(self, mesh: MeshExecutor):
        self.mesh = mesh
        self.world = mesh.world
        self.device = mesh.device

    def run(self, func_name: str, *args):
        outs = self.mesh.run(func_name, [list(args)] * self.world)
        return outs[0]

    @property
    def stats(self) -> ExecutionStats:
        return self.mesh.stats

    @property
    def shard_stats(self) -> List[ExecutionStats]:
        return self.mesh.shard_stats

    def reset_stats(self, *, reset_pool: bool = True) -> ExecutionStats:
        before = self.mesh.stats
        for vm in self.mesh.vms:
            vm.reset_stats(reset_pool=reset_pool)
        return before

    @property
    def tracer(self):
        return self.mesh.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.mesh.tracer = value

    def check_no_leaks(self) -> None:
        """Per-shard pool audit: SPMD ranks must balance allocations
        identically — any asymmetry means a shard leaked (or double
        freed) relative to its peers."""
        residents = [vm.stats.current_bytes for vm in self.mesh.vms]
        if len(set(residents)) > 1:
            raise VMError(
                f"per-shard pools diverged: resident bytes {residents}"
            )
