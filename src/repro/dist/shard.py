"""Sharding specifications and the tensor-parallel plan for ``build_llama``.

A :class:`ShardSpec` describes how one logical tensor is placed on a
1-d device mesh of ``world`` shards: replicated (every shard holds the
full tensor) or split (each shard holds a contiguous ``1/world`` chunk
along one dim).  Specs ride on :class:`~repro.core.annotations.TensorAnn`
as the optional ``shard`` field, so after ``PropagateSharding`` the
placement of every intermediate is visible struct info — printable,
checkable, and consumed by ``LowerSharding`` exactly like shapes are
consumed by memory planning.

``Partial`` marks a value that exists on every shard as an *unreduced
partial sum* (the output of a row-parallel matmul): mathematically the
logical value is the elementwise sum over shards.  Propagation produces
it; lowering must eliminate it (insert an all-reduce) before any shard
consumes the value as if it were whole.

:func:`make_llama_tp_plan` is the classic Megatron-LM placement for the
decoder stack: column-parallel QKV / gate / up projections, head-sharded
attention (and paged KV pools), row-parallel output / down projections —
one all-reduce per attention block and one per MLP per layer, nothing
else on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ShardSpec:
    """Placement of one tensor on the 1-d mesh.

    ``dim is None`` means replicated; otherwise the tensor is split into
    contiguous equal chunks along ``dim``.  ``partial`` marks unreduced
    row-parallel partial sums (always full-shaped, never split).
    """

    dim: Optional[int] = None
    partial: bool = False

    def __post_init__(self):
        if self.partial and self.dim is not None:
            raise ValueError("a partial-sum value cannot also be split")

    @property
    def is_replicated(self) -> bool:
        return self.dim is None and not self.partial

    @property
    def is_split(self) -> bool:
        return self.dim is not None

    def __repr__(self) -> str:
        if self.partial:
            return "Shard(partial)"
        if self.dim is None:
            return "Shard(R)"
        return f"Shard(S{self.dim})"


def Replicated() -> ShardSpec:
    return ShardSpec()


def Split(dim: int) -> ShardSpec:
    if dim < 0:
        raise ValueError("split dim must be non-negative")
    return ShardSpec(dim=dim)


Partial = ShardSpec(partial=True)


@dataclass(frozen=True)
class ShardingPlan:
    """Mesh size plus per-parameter placement for one exported module.

    ``params`` maps *function parameter names* (the nn-frontend's
    ``p_<path>`` names and user inputs like ``k_pages_0``) to specs;
    anything absent is replicated.  Plans are frozen and hashable so
    they can participate in compile-cache keys.
    """

    world: int
    params: Tuple[Tuple[str, ShardSpec], ...]

    def __post_init__(self):
        if self.world < 1:
            raise ValueError(f"world must be >= 1, got {self.world}")

    @staticmethod
    def of(world: int, params: Dict[str, ShardSpec]) -> "ShardingPlan":
        return ShardingPlan(world, tuple(sorted(params.items())))

    def spec_for(self, name: str) -> ShardSpec:
        for pname, spec in self.params:
            if pname == name:
                return spec
        return ShardSpec()

    def as_dict(self) -> Dict[str, ShardSpec]:
        return dict(self.params)


def make_llama_tp_plan(cfg, world: int) -> ShardingPlan:
    """Megatron-style tensor-parallel plan for a decoder-only config.

    Embedding, norms and the LM head stay replicated (their inputs and
    outputs are replicated, so logits come out whole on every shard);
    attention and MLP split over heads / intermediate width with exactly
    one all-reduce each per layer (inserted by ``LowerSharding`` at the
    row-parallel ``o_proj`` / ``down_proj`` outputs).
    """
    if world < 1:
        raise ValueError(f"world must be >= 1, got {world}")
    if cfg.num_heads % world:
        raise ValueError(
            f"tp={world} must divide num_heads={cfg.num_heads}"
        )
    if cfg.num_kv_heads % world:
        raise ValueError(
            f"tp={world} must divide num_kv_heads={cfg.num_kv_heads}"
        )
    if cfg.intermediate_size % world:
        raise ValueError(
            f"tp={world} must divide intermediate_size={cfg.intermediate_size}"
        )
    if cfg.quantize_bits is not None and world > 1:
        raise ValueError("tensor parallelism over quantized weights is "
                         "not supported")

    params: Dict[str, ShardSpec] = {}
    for i in range(cfg.num_layers):
        attn = f"p_layers_{i}_attn"
        # Column-parallel projections: weight (in, out) split on the
        # output dim; an optional bias (out,) splits with it.
        for proj in ("q_proj", "k_proj", "v_proj"):
            params[f"{attn}_{proj}_weight"] = Split(1)
            if cfg.attention_bias:
                params[f"{attn}_{proj}_bias"] = Split(0)
        # Row-parallel output projection: weight split on the input dim;
        # the matmul output becomes a partial sum (one all-reduce here).
        params[f"{attn}_o_proj_weight"] = Split(0)

        mlp = f"p_layers_{i}_mlp"
        if cfg.gated_mlp:
            params[f"{mlp}_gate_proj_weight"] = Split(1)
        params[f"{mlp}_up_proj_weight"] = Split(1)
        params[f"{mlp}_down_proj_weight"] = Split(0)

        # Paged KV pools (p, page, h_kv, d) and dense caches
        # (b, m, h_kv, d) are head-sharded: dim 2 in both layouts.
        params[f"k_pages_{i}"] = Split(2)
        params[f"v_pages_{i}"] = Split(2)
        params[f"k_cache_{i}"] = Split(2)
        params[f"v_cache_{i}"] = Split(2)

    return ShardingPlan.of(world, params)


def shard_slice(array, spec: ShardSpec, world: int, rank: int):
    """The ``rank``-th contiguous chunk of ``array`` under ``spec``
    (identity for replicated specs) — how concrete per-shard weights and
    KV pools are carved out of the logical tensor."""
    if not 0 <= rank < world:
        raise ValueError(f"rank {rank} out of range for world {world}")
    if spec.partial:
        raise ValueError("cannot slice a partial-sum spec")
    if spec.dim is None or world == 1:
        return array
    size = array.shape[spec.dim]
    if size % world:
        raise ValueError(
            f"dim {spec.dim} of size {size} is not divisible by {world}"
        )
    chunk = size // world
    index = [slice(None)] * array.ndim
    index[spec.dim] = slice(rank * chunk, (rank + 1) * chunk)
    return array[tuple(index)]
