"""Distributed execution: sharded IR, collectives, analytical multi-device runtime.

``repro.dist`` extends the single-device analytical stack to a mesh of
N identical devices connected by a modeled interconnect:

* :mod:`repro.dist.shard` — :class:`ShardSpec` placement annotations
  (replicated, or split along one tensor dim over the mesh axis) and the
  Megatron-style tensor-parallel plan for ``build_llama``.
* :mod:`repro.dist.interconnect` — :class:`Interconnect` link cost model
  (ring all-reduce / all-gather / reduce-scatter / broadcast) with
  NVLink-class and PCIe-class presets.
* :mod:`repro.dist.mesh` — :class:`MeshExecutor`, N per-shard VMs in
  lockstep on the shared analytical clock, plus the barrier-synchronized
  :class:`CollectiveChannel` used by concrete (value-computing) meshes.

The IR-level pieces live where their layers live: ``ccl.*`` collective
ops in :mod:`repro.ops.ccl`, the ``PropagateSharding`` /
``LowerSharding`` pass pair in :mod:`repro.transform.sharding`, and the
``tp=N`` export in :func:`repro.models.llama.build_llama`.
"""

from .interconnect import Interconnect, LOOPBACK, NVLINK, PCIE
from .mesh import CollectiveChannel, MeshContext, MeshExecutor, MeshVM
from .shard import (
    Replicated,
    ShardSpec,
    ShardingPlan,
    Split,
    make_llama_tp_plan,
    shard_slice,
)

__all__ = [
    "CollectiveChannel",
    "Interconnect",
    "LOOPBACK",
    "MeshContext",
    "MeshExecutor",
    "MeshVM",
    "NVLINK",
    "PCIE",
    "Replicated",
    "ShardSpec",
    "ShardingPlan",
    "Split",
    "make_llama_tp_plan",
    "shard_slice",
]
