"""Analytical interconnect cost model for collective communication.

Costs follow the classic ring-algorithm algebra (Thakur et al.; the
NCCL/RCCL defaults): a collective over ``world`` peers moving a logical
tensor of ``nbytes`` (the *full*, unsharded payload) decomposes into
per-hop transfers on a unidirectional ring.

* **all-reduce** — reduce-scatter then all-gather: ``2·(N−1)`` hops each
  carrying ``nbytes/N``, so ``2·(N−1)/N · nbytes/bw + 2·(N−1)·lat``.
* **all-gather / reduce-scatter** — one ring traversal: ``(N−1)`` hops of
  ``nbytes/N``, so ``(N−1)/N · nbytes/bw + (N−1)·lat``.  The two are
  exact duals and their sum is the all-reduce cost by construction.
* **broadcast** — pipelined ring: the payload streams through ``N−1``
  hops overlapped chunk-wise, ``nbytes/bw + (N−1)·lat``.

Every cost is exactly zero at ``world == 1`` (nothing moves) — the
degenerate mesh must price like the single-device build, which is what
keeps ``tp=1`` byte-identical to unsharded execution.

Like the roofline :class:`~repro.runtime.device.Device`, this is a
*model*, deterministic on the discrete-event clock: good enough to rank
TP configurations and expose compute-vs-communication crossovers, cheap
enough to sweep cluster shapes in a unit test.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interconnect:
    """Point-to-point link model between mesh peers.

    ``bandwidth`` is the per-direction link bandwidth in bytes/s,
    ``latency`` the per-hop message latency in seconds.
    """

    name: str
    bandwidth: float  # bytes/s, per direction
    latency: float  # seconds per hop

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("interconnect bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("interconnect latency cannot be negative")

    # -- ring collective costs (nbytes = full logical payload) ------------------

    def all_reduce_s(self, world: int, nbytes: int) -> float:
        """Ring all-reduce: reduce-scatter + all-gather."""
        self._check(world, nbytes)
        if world <= 1 or nbytes == 0:
            return 0.0
        hops = 2 * (world - 1)
        return hops / world * (nbytes / self.bandwidth) + hops * self.latency

    def all_gather_s(self, world: int, nbytes: int) -> float:
        """Ring all-gather of a tensor whose *gathered* size is ``nbytes``."""
        self._check(world, nbytes)
        if world <= 1 or nbytes == 0:
            return 0.0
        hops = world - 1
        return hops / world * (nbytes / self.bandwidth) + hops * self.latency

    def reduce_scatter_s(self, world: int, nbytes: int) -> float:
        """Ring reduce-scatter of a tensor of *full* size ``nbytes``.

        Exact dual of :meth:`all_gather_s`: same hop count, same per-hop
        payload, so the two costs are equal and sum to the all-reduce.
        """
        return self.all_gather_s(world, nbytes)

    def broadcast_s(self, world: int, nbytes: int) -> float:
        """Pipelined ring broadcast from one root to every peer."""
        self._check(world, nbytes)
        if world <= 1 or nbytes == 0:
            return 0.0
        return nbytes / self.bandwidth + (world - 1) * self.latency

    @staticmethod
    def _check(world: int, nbytes: int) -> None:
        if world < 1:
            raise ValueError(f"world must be >= 1, got {world}")
        if nbytes < 0:
            raise ValueError(f"nbytes cannot be negative, got {nbytes}")


#: NVLink-class intra-node fabric (NVLink4-generation: ~450 GB/s per
#: direction per link, ~1 µs hop latency).
NVLINK = Interconnect("nvlink", bandwidth=450e9, latency=1e-6)

#: PCIe-class fallback fabric (PCIe 4.0 x16: ~32 GB/s per direction,
#: ~5 µs hop latency through the switch/root complex).
PCIE = Interconnect("pcie", bandwidth=32e9, latency=5e-6)

#: Infinitely fast zero-latency link — collectives cost nothing.  The
#: degenerate model a mesh falls back to when no interconnect is given
#: (and the natural choice for correctness-only concrete tests).
LOOPBACK = Interconnect("loopback", bandwidth=float("inf"), latency=0.0)

PRESETS = {link.name: link for link in (NVLINK, PCIE, LOOPBACK)}
