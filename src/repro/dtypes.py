"""Data type names shared by the graph level, tensor programs and runtime.

Relax uses short dtype strings ("f32", "f16", "i32", "u32", ...) in tensor
annotations and buffer declarations.  This module maps them to NumPy dtypes
and byte sizes; it is deliberately tiny so every level of the stack agrees
on the same vocabulary.
"""

from __future__ import annotations

import numpy as np

_DTYPE_TABLE = {
    "f64": (np.float64, 8),
    "f32": (np.float32, 4),
    "f16": (np.float16, 2),
    "i64": (np.int64, 8),
    "i32": (np.int32, 4),
    "i16": (np.int16, 2),
    "i8": (np.int8, 1),
    "u64": (np.uint64, 8),
    "u32": (np.uint32, 4),
    "u16": (np.uint16, 2),
    "u8": (np.uint8, 1),
    "bool": (np.bool_, 1),
}

_NUMPY_TO_NAME = {np.dtype(np_dtype): name for name, (np_dtype, _) in _DTYPE_TABLE.items()}


def is_valid_dtype(name: str) -> bool:
    return name in _DTYPE_TABLE


def check_dtype(name: str) -> str:
    """Validate a dtype string, returning it (raises ValueError otherwise)."""
    if name not in _DTYPE_TABLE:
        raise ValueError(f"unknown dtype {name!r}; expected one of {sorted(_DTYPE_TABLE)}")
    return name


def to_numpy(name: str):
    """NumPy scalar type for a dtype string."""
    return _DTYPE_TABLE[check_dtype(name)][0]


def itemsize(name: str) -> int:
    """Bytes per element."""
    return _DTYPE_TABLE[check_dtype(name)][1]


def from_numpy(np_dtype) -> str:
    """Short dtype string for a NumPy dtype."""
    key = np.dtype(np_dtype)
    if key not in _NUMPY_TO_NAME:
        raise ValueError(f"unsupported NumPy dtype {np_dtype}")
    return _NUMPY_TO_NAME[key]


def is_float(name: str) -> bool:
    return check_dtype(name).startswith("f")


def is_integer(name: str) -> bool:
    name = check_dtype(name)
    return name.startswith("i") or name.startswith("u")
