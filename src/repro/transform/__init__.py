"""Cross-level optimization passes and the compilation pipeline (§4)."""

from .annotate_pattern import PATTERN_ATTR, AnnotatePatternKind, pattern_of
from .cuda_graph import CUDAGraphOffload
from .dead_code import DeadCodeElimination
from .fold_constant import FoldConstant
from .fuse_ops import FuseOps, substitute_vars
from .fuse_pattern import FuseByPattern
from .fuse_tensorir import FuseTensorIR
from .legalize import LegalizeOps
from .library_dispatch import LibraryDispatch, register_dispatch
from .lower_call_tir import LowerCallTIR
from .memory_plan import InsertKills, MemoryPlan
from .memory_ops import (
    alloc_storage,
    alloc_storage_op,
    alloc_tensor,
    alloc_tensor_from_storage,
    alloc_tensor_from_storage_op,
    alloc_tensor_op,
    call_lib_dps,
    call_lib_dps_op,
    call_tir_dps,
    call_tir_dps_op,
    dps_parts,
    kill,
    kill_op,
)
from .pass_infra import (
    FunctionPass,
    LambdaPass,
    Pass,
    PassContext,
    Sequential,
)
from .pipeline import build, compile_and_load, default_pipeline, optimize
from .refine_shapes import SHAPE_PRESERVING_UNARY, RefineShapes
from .to_vm import VMCodegen, VMCodegenError
from .tune_tir import (
    SCHEDULE_ATTR,
    ScheduleCandidate,
    ScheduleRules,
    TUNE_ATTR,
    TuneTir,
    classify_schedule,
)
from .workspace_lift import WorkspaceLifting

__all__ = [
    "AnnotatePatternKind",
    "CUDAGraphOffload",
    "DeadCodeElimination",
    "FunctionPass",
    "FoldConstant",
    "FuseByPattern",
    "FuseOps",
    "FuseTensorIR",
    "InsertKills",
    "LambdaPass",
    "LegalizeOps",
    "LibraryDispatch",
    "LowerCallTIR",
    "MemoryPlan",
    "PATTERN_ATTR",
    "Pass",
    "RefineShapes",
    "SHAPE_PRESERVING_UNARY",
    "PassContext",
    "Sequential",
    "VMCodegen",
    "VMCodegenError",
    "SCHEDULE_ATTR",
    "ScheduleCandidate",
    "ScheduleRules",
    "TUNE_ATTR",
    "TuneTir",
    "classify_schedule",
    "WorkspaceLifting",
    "alloc_storage",
    "alloc_storage_op",
    "alloc_tensor",
    "alloc_tensor_from_storage",
    "alloc_tensor_from_storage_op",
    "alloc_tensor_op",
    "build",
    "call_lib_dps",
    "call_lib_dps_op",
    "call_tir_dps",
    "call_tir_dps_op",
    "compile_and_load",
    "default_pipeline",
    "dps_parts",
    "kill",
    "kill_op",
    "optimize",
    "pattern_of",
    "register_dispatch",
    "substitute_vars",
]
