"""Cross-level optimization passes and the compilation pipeline (§4)."""

from .annotate_pattern import PATTERN_ATTR, AnnotatePatternKind, pattern_of
from .cuda_graph import CUDAGraphOffload
from .dead_code import DeadCodeElimination
from .fold_constant import FoldConstant
from .fuse_ops import FuseOps, substitute_vars
from .fuse_pattern import FuseByPattern
from .fuse_tensorir import FuseTensorIR
from .legalize import LegalizeOps
from .library_dispatch import LibraryDispatch, register_dispatch
from .lower_call_tir import LowerCallTIR
from .memory_plan import InsertKills, MemoryPlan
from .memory_ops import (
    alloc_storage,
    alloc_storage_op,
    alloc_tensor,
    alloc_tensor_from_storage,
    alloc_tensor_from_storage_op,
    alloc_tensor_op,
    call_lib_dps,
    call_lib_dps_op,
    call_tir_dps,
    call_tir_dps_op,
    dps_parts,
    kill,
    kill_op,
)
from .instrument import (
    IRStats,
    PassInstrument,
    PrintIRDiff,
    Timing,
    WellFormedVerifier,
    ir_stats,
)
from .pass_infra import (
    FunctionPass,
    LambdaPass,
    Pass,
    PassContext,
    PassRecord,
    PipelineReport,
    Sequential,
    build_pipeline,
    get_pass,
    pass_metadata,
    register_pass,
    registered_passes,
)
from .pipeline import (
    DEFAULT_PIPELINE,
    build,
    compile_and_load,
    default_pipeline,
    optimize,
)
from .refine_shapes import SHAPE_PRESERVING_UNARY, RefineShapes
from .sharding import LowerSharding, PropagateSharding, ShardingError
from .to_vm import VMCodegen, VMCodegenError
from .tune_tir import (
    SCHEDULE_ATTR,
    ScheduleCandidate,
    ScheduleRules,
    TUNE_ATTR,
    TuneTir,
    classify_schedule,
)
from .workspace_lift import WorkspaceLifting

__all__ = [
    "AnnotatePatternKind",
    "CUDAGraphOffload",
    "DEFAULT_PIPELINE",
    "DeadCodeElimination",
    "FunctionPass",
    "FoldConstant",
    "FuseByPattern",
    "FuseOps",
    "FuseTensorIR",
    "IRStats",
    "InsertKills",
    "LambdaPass",
    "LegalizeOps",
    "LibraryDispatch",
    "LowerCallTIR",
    "LowerSharding",
    "PropagateSharding",
    "ShardingError",
    "MemoryPlan",
    "PATTERN_ATTR",
    "Pass",
    "PassInstrument",
    "PassRecord",
    "PipelineReport",
    "PrintIRDiff",
    "RefineShapes",
    "SHAPE_PRESERVING_UNARY",
    "PassContext",
    "Sequential",
    "Timing",
    "VMCodegen",
    "VMCodegenError",
    "WellFormedVerifier",
    "SCHEDULE_ATTR",
    "ScheduleCandidate",
    "ScheduleRules",
    "TUNE_ATTR",
    "TuneTir",
    "classify_schedule",
    "WorkspaceLifting",
    "alloc_storage",
    "alloc_storage_op",
    "alloc_tensor",
    "alloc_tensor_from_storage",
    "alloc_tensor_from_storage_op",
    "alloc_tensor_op",
    "build",
    "build_pipeline",
    "call_lib_dps",
    "call_lib_dps_op",
    "call_tir_dps",
    "call_tir_dps_op",
    "compile_and_load",
    "default_pipeline",
    "dps_parts",
    "get_pass",
    "ir_stats",
    "kill",
    "kill_op",
    "optimize",
    "pass_metadata",
    "pattern_of",
    "register_dispatch",
    "register_pass",
    "registered_passes",
    "substitute_vars",
]
