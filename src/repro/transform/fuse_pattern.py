"""FuseByPattern — user-defined fusion patterns (§4.2).

The paper: "we can apply a pass to fuse new sets of patterns that are not
covered by FuseOps (e.g., fusing all sub-operators in scaled dot-product
attention), and use FuseOps for the remainder.  FuseTensorIR can then
transform the fused subgraph function from both customized and standard
fusion."

This pass fuses *linear chains* of ``call_tir`` bindings whose tensor
programs' source operators match a user-given name sequence — regardless
of their pattern kinds, so chains containing Opaque programs (softmax!)
fuse too.  It reuses FuseOps' outlining machinery, producing the same
subgraph-function form, so the standard FuseTensorIR merges the result —
the composability the paper advertises.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.expr import Function, SeqExpr, Var
from ..core.ir_module import IRModule
from ..core.deduction import rededuce_function
from ..core import op as core_op
from ..core.expr import Call, DataflowBlock, Tuple, TupleGetItem
from .fuse_ops import FuseOps
from .pass_infra import FunctionPass, PassContext


class FuseByPattern(FunctionPass):
    """Fuse chains matching the given source-operator name sequences.

    Not in the module-level registry: it takes mandatory constructor
    arguments (the patterns), so it cannot be built by name alone.
    """

    name = "FuseByPattern"
    opt_level = 1

    def __init__(self, patterns: Sequence[Sequence[str]]):
        self.patterns = [tuple(p) for p in patterns]
        for pattern in self.patterns:
            if len(pattern) < 2:
                raise ValueError("fusion patterns need at least two operators")

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        changed = False
        new_blocks = []
        outliner = FuseOps()
        for block in body.blocks:
            if not block.is_dataflow:
                new_blocks.append(block)
                continue
            block, block_changed = self._fuse_block(name, block, body, mod, outliner)
            changed = changed or block_changed
            new_blocks.append(block)
        if not changed:
            return func

        new_body = SeqExpr(new_blocks, body.body)
        new_body.ann = body.ann
        out = Function(func.params, new_body, func.ret_ann, func.attrs, func.name)
        out.ann = func.ann

        def lookup(gvar):
            target = mod[gvar.name_hint] if gvar.name_hint in mod else None
            return target.signature_ann() if isinstance(target, Function) else None

        rededuce_function(out, lookup)
        return out

    def _fuse_block(self, fn_name, block, body, mod, outliner: FuseOps):
        bindings = block.bindings
        source_ops: Dict[int, str] = {}
        var_to_idx: Dict[int, int] = {}
        for i, binding in enumerate(bindings):
            var_to_idx[binding.var._id] = i
            value = binding.value
            if core_op.is_call_to(value, core_op.call_tir_op):
                callee, _, _ = core_op.call_tir_parts(value)
                prim = mod[callee.name_hint]
                source_ops[i] = prim.attrs.get("source_op", callee.name_hint)

        use_count: Dict[int, int] = {}

        def count(expr):
            if isinstance(expr, Var):
                use_count[expr._id] = use_count.get(expr._id, 0) + 1
            elif isinstance(expr, Call):
                for a in expr.args:
                    count(a)
            elif isinstance(expr, Tuple):
                for f in expr.fields:
                    count(f)
            elif isinstance(expr, TupleGetItem):
                count(expr.tuple_value)

        for blk in body.blocks:
            for b in blk.bindings:
                count(b.value)
        count(body.body)

        consumed: set = set()
        replaced: Dict[int, Optional[object]] = {}
        for start in range(len(bindings)):
            if start in consumed or start not in source_ops:
                continue
            for pattern in self.patterns:
                group = self._match_chain(
                    start, pattern, bindings, source_ops, var_to_idx,
                    use_count, consumed,
                )
                if group is None:
                    continue
                outlined = outliner._outline_group(fn_name, bindings, group, mod)
                if outlined is None:
                    continue
                consumed.update(group)
                for i in group[:-1]:
                    replaced[i] = None
                replaced[group[-1]] = outlined
                break

        if not replaced:
            return block, False
        new_bindings = []
        for i, binding in enumerate(bindings):
            if i in replaced:
                if replaced[i] is not None:
                    new_bindings.append(replaced[i])
            else:
                new_bindings.append(binding)
        return DataflowBlock(new_bindings), True

    @staticmethod
    def _match_chain(start, pattern, bindings, source_ops, var_to_idx,
                     use_count, consumed):
        """Follow single-use producer->consumer links along ``pattern``."""
        if source_ops.get(start) != pattern[0]:
            return None
        group = [start]
        current = start
        for want in pattern[1:]:
            var = bindings[current].var
            if use_count.get(var._id, 0) != 1:
                return None
            # Find the unique consumer among later call_tir bindings.
            consumer = None
            for j in range(current + 1, len(bindings)):
                if j not in source_ops:
                    continue
                _, args, _ = core_op.call_tir_parts(bindings[j].value)
                if any(isinstance(a, Var) and a._id == var._id for a in args):
                    consumer = j
                    break
            if consumer is None or consumer in consumed:
                return None
            if source_ops.get(consumer) != want:
                return None
            group.append(consumer)
            current = consumer
        return group
