"""Dynamic shape-aware memory planning (Algorithm 3, §4.3).

Walks the lowered function in order, maintaining a storage pool with
symbolic-shape awareness:

* in **symbolic mode**, ``RequestReuseWithSymShape`` reuses a free storage
  when its size expression is *provably equal* to the requested one
  (``sym.prove_equal``), so a ``(2, n)`` f32 tensor reuses the storage of a
  dead ``(n, 2)`` f32 tensor (Fig. 10);
* in **upper-bound mode** (when the context declares bounds for the
  symbolic variables, e.g. an LLM's context length), sizes become static
  worst-case byte counts and reuse is best-fit — enabling a fully static
  allocation plan, the prerequisite for CUDA Graph offloading (§4.5) and
  for memory-constrained deployment (§5.3).

Allocations the pass cannot bound stay on the runtime pool, and an
``InsertKills`` pass adds end-of-life markers so the pool can recycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import dtypes, sym
from ..core.annotations import ObjectAnn
from ..core.expr import (
    BindingBlock,
    Call,
    Expr,
    Function,
    If,
    MatchCast,
    SeqExpr,
    Tuple as TupleExpr,
    TupleGetItem,
    Var,
    VarBinding,
)
from ..core.ir_module import IRModule
from .memory_ops import (
    alloc_storage,
    alloc_tensor_from_storage,
    alloc_tensor_op,
    kill,
)
from .pass_infra import FunctionPass, PassContext, register_pass


class _StoragePool:
    """Algorithm 3's storage pool with symbolic shape awareness."""

    def __init__(self, static_mode: bool):
        self.static_mode = static_mode
        self.free: List[Tuple[Var, object]] = []  # (storage var, size expr/int)

    def request_reuse(self, size) -> Optional[Var]:
        if self.static_mode:
            # Best-fit among adequate free storages.
            best = None
            for idx, (var, cap) in enumerate(self.free):
                if cap >= size and (best is None or cap < self.free[best][1]):
                    best = idx
            if best is None:
                return None
            var, _ = self.free.pop(best)
            return var
        for idx, (var, cap) in enumerate(self.free):
            if sym.prove_equal(cap, size):
                self.free.pop(idx)
                return var
        return None

    def recycle(self, storage_var: Var, size) -> None:
        self.free.append((storage_var, size))


def _escaping_vars(blocks, body_expr) -> set:
    """Vars whose values escape the function (returned, possibly through
    tuples / aliases).  Escaping tensors must keep dedicated storage."""
    escaping = set()

    def roots(expr: Expr) -> None:
        if isinstance(expr, Var):
            escaping.add(expr._id)
        elif isinstance(expr, TupleExpr):
            for f in expr.fields:
                roots(f)
        elif isinstance(expr, TupleGetItem):
            roots(expr.tuple_value)

    roots(body_expr)
    # Propagate backwards through value-forwarding bindings.
    all_bindings = [b for block in blocks for b in block.bindings]
    for binding in reversed(all_bindings):
        if binding.var._id not in escaping:
            continue
        value = binding.value
        if isinstance(value, (Var, TupleExpr, TupleGetItem)):
            roots(value)
    return escaping


def _last_uses(blocks, body_expr) -> Dict[int, int]:
    """Map var id -> index of its last use (body counts as infinity).

    Uses of a value-forwarding alias (``gv = lv``, tuples, projections)
    count as uses of the underlying vars: killing ``lv`` after the alias
    binding would free the tensor that ``gv`` still refers to.
    """
    order = 0
    uses_at: Dict[int, int] = {}
    alias_members: Dict[int, List[int]] = {}

    def forwarded(expr: Expr, out: List[int]) -> None:
        if isinstance(expr, Var):
            out.extend(alias_members.get(expr._id, (expr._id,)))
        elif isinstance(expr, TupleExpr):
            for f in expr.fields:
                forwarded(f, out)
        elif isinstance(expr, TupleGetItem):
            forwarded(expr.tuple_value, out)

    for block in blocks:
        for binding in block.bindings:
            # MatchCast forwards its value's register just like ``gv = lv``
            # (to_vm aliases reg_map[var] to the source register), so its
            # var must alias too — otherwise the source is killed at the
            # cast while the cast's var still reads the same tensor.
            if isinstance(binding, (VarBinding, MatchCast)) and isinstance(
                binding.value, (Var, TupleExpr, TupleGetItem)
            ):
                members: List[int] = []
                forwarded(binding.value, members)
                alias_members[binding.var._id] = members

    def note(expr: Expr, idx: int) -> None:
        if isinstance(expr, Var):
            uses_at[expr._id] = idx
            for member in alias_members.get(expr._id, ()):
                uses_at[member] = idx
        elif isinstance(expr, Call):
            for a in expr.args:
                note(a, idx)
        elif isinstance(expr, TupleExpr):
            for f in expr.fields:
                note(f, idx)
        elif isinstance(expr, TupleGetItem):
            note(expr.tuple_value, idx)
        elif isinstance(expr, If):
            # Conservative: everything a branch touches is used here.
            note(expr.cond, idx)
            for branch in (expr.true_branch, expr.false_branch):
                if isinstance(branch, SeqExpr):
                    for block in branch.blocks:
                        for b in block.bindings:
                            note(b.value, idx)
                    note(branch.body, idx)
                else:
                    note(branch, idx)

    for block in blocks:
        for binding in block.bindings:
            note(binding.value, order)
            order += 1
    note(body_expr, 1 << 60)
    return uses_at


@register_pass
class MemoryPlan(FunctionPass):
    name = "MemoryPlan"
    opt_level = 1
    opt_flag = "enable_memory_planning"

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        # Gather every symbolic variable with a declared bound; static mode
        # requires all alloc sizes to be boundable.
        last_use = _last_uses(body.blocks, body.body)
        escaping_vars = _escaping_vars(body.blocks, body.body)

        changed = False
        new_blocks = []
        order = 0
        # (tensor var id -> (storage var, size)) for recycling at death.
        tensor_storage: Dict[int, Tuple[Var, object]] = {}
        planned_static = True
        pool_symbolic = _StoragePool(static_mode=False)
        pool_static = _StoragePool(static_mode=True)

        for block in body.blocks:
            new_bindings: List[VarBinding] = []
            for binding in block.bindings:
                value = binding.value
                is_alloc = (
                    isinstance(value, Call) and value.op is alloc_tensor_op
                )
                if not is_alloc:
                    new_bindings.append(binding)
                    self._recycle_dead(
                        value, order, last_use, tensor_storage,
                        pool_symbolic, pool_static,
                    )
                    order += 1
                    continue

                shape_expr = value.args[0]
                dtype = value.attrs["dtype"]
                size = sym.simplify(
                    sym.shape_product(shape_expr.values) * dtypes.itemsize(dtype)
                )
                static_size = None
                if sym.is_static(size):
                    static_size = sym.as_static_int(size)
                else:
                    bounds = ctx.bounds_for(sym.free_vars(size))
                    static_size = sym.upper_bound(size, bounds) if bounds else None
                    if static_size is not None and not all(
                        v.name in ctx.sym_var_upper_bounds
                        for v in sym.free_vars(size)
                    ):
                        static_size = None

                changed = True
                if static_size is not None:
                    pool, size_key = pool_static, static_size
                    size_arg: sym.ExprLike = sym.IntImm(static_size)
                else:
                    planned_static = False
                    pool, size_key = pool_symbolic, size
                    size_arg = size

                # Tensors that escape the function (returned values: KV
                # caches, logits) get dedicated storages: results must
                # survive past the call, so letting them consume reusable
                # chunks would permanently drain the transient pool (every
                # KV cache would eat one activation chunk per layer).  The
                # dedicated storages are tagged so memory accounting can
                # separate results from transient activations (Table 2
                # counts only the latter).
                escaping = (
                    binding.var._id in escaping_vars
                    or last_use.get(binding.var._id, -1) >= (1 << 60)
                )

                storage_var = None if escaping else pool.request_reuse(size_key)
                if storage_var is None:
                    sto_call = alloc_storage(size_arg)
                    if escaping:
                        sto_call.attrs["escapes"] = True
                    sto_call.ann = ObjectAnn()
                    sto_call.provenance = value.provenance
                    storage_var = Var(f"storage{len(tensor_storage)}", ObjectAnn())
                    new_bindings.append(VarBinding(storage_var, sto_call))

                inst = alloc_tensor_from_storage(storage_var, shape_expr.values, dtype)
                inst.ann = binding.var.ann
                inst.provenance = value.provenance
                new_bindings.append(VarBinding(binding.var, inst))
                if not escaping:
                    tensor_storage[binding.var._id] = (storage_var, size_key)
                order += 1
            new_blocks.append(BindingBlock(new_bindings))

        if not changed:
            return func
        new_body = SeqExpr(new_blocks, body.body)
        new_body.ann = body.ann
        attrs = dict(func.attrs)
        attrs["memory_planned"] = "static" if planned_static else "symbolic"
        out = Function(func.params, new_body, func.ret_ann, attrs, func.name)
        out.ann = func.ann
        return out

    @staticmethod
    def _recycle_dead(value, order, last_use, tensor_storage, pool_sym, pool_static):
        """After an op, recycle storages of tensors that just died."""

        def scan(expr: Expr) -> None:
            if isinstance(expr, Var):
                entry = tensor_storage.get(expr._id)
                if entry is not None and last_use.get(expr._id, -1) == order:
                    storage_var, size_key = entry
                    pool = pool_static if isinstance(size_key, int) else pool_sym
                    pool.recycle(storage_var, size_key)
                    del tensor_storage[expr._id]
            elif isinstance(expr, Call):
                for a in expr.args:
                    scan(a)
            elif isinstance(expr, TupleExpr):
                for f in expr.fields:
                    scan(f)
            elif isinstance(expr, TupleGetItem):
                scan(expr.tuple_value)
            elif isinstance(expr, If):
                scan(expr.cond)
                for branch in (expr.true_branch, expr.false_branch):
                    if isinstance(branch, SeqExpr):
                        for block in branch.blocks:
                            for b in block.bindings:
                                scan(b.value)
                        scan(branch.body)
                    else:
                        scan(branch)

        scan(value)


@register_pass
class InsertKills(FunctionPass):
    """Add ``memory.kill`` after the last use of pool-allocated tensors."""

    # Required: pool-allocated tensors (planning disabled, or dynamic
    # fallbacks) rely on kills for recycling in *both* allocation modes.
    name = "InsertKills"
    opt_level = 0
    required = True

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        body = func.body
        if not isinstance(body, SeqExpr):
            return func
        last_use = _last_uses(body.blocks, body.body)
        escaping_vars = _escaping_vars(body.blocks, body.body)

        pool_vars: Dict[int, Var] = {}
        alloc_prov: Dict[int, Tuple[str, ...]] = {}
        for block in body.blocks:
            for binding in block.bindings:
                value = binding.value
                if isinstance(value, Call) and value.op is alloc_tensor_op:
                    if (binding.var._id in escaping_vars
                            or last_use.get(binding.var._id, -1) >= (1 << 60)):
                        value.attrs["escapes"] = True  # returned: never killed
                    else:
                        pool_vars[binding.var._id] = binding.var
                        alloc_prov[binding.var._id] = value.provenance
        if not pool_vars:
            return func

        changed = False
        order = 0
        new_blocks = []
        for block in body.blocks:
            new_bindings = []
            for binding in block.bindings:
                new_bindings.append(binding)
                dying = [
                    var
                    for vid, var in pool_vars.items()
                    if last_use.get(vid, -1) == order
                ]
                for var in dying:
                    kill_call = kill(var)
                    kill_call.ann = ObjectAnn()
                    # The kill descends from the alloc it ends the life of.
                    kill_call.provenance = alloc_prov.get(var._id, ())
                    new_bindings.append(VarBinding(Var("_", ObjectAnn()), kill_call))
                    changed = True
                order += 1
            new_blocks.append(BindingBlock(new_bindings))

        if not changed:
            return func
        new_body = SeqExpr(new_blocks, body.body)
        new_body.ann = body.ann
        out = Function(func.params, new_body, func.ret_ann, func.attrs, func.name)
        out.ann = func.ann
        return out
