"""FoldConstant: evaluate operator calls over constant inputs at compile
time.

A standard graph-level optimization the cross-level design makes nearly
free: a call is foldable when every tensor argument is a Constant and the
operator has a legalization — the *same* tensor program that would run at
runtime is executed once by the TIR interpreter and replaced by its result.
(Quantization weight pre-packing and mask precomputation are the typical
beneficiaries.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import dtypes, sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Constant, Expr, Op, ShapeExpr
from ..core.ir_module import IRModule
from ..core.deduction import rededuce_function
from ..core.visitor import ExprMutator
from ..ops.registry import finalize_prim_func
from .pass_infra import FunctionPass, PassContext, register_pass


def _try_fold(call: Call) -> Optional[Constant]:
    op = call.op
    if not isinstance(op, Op) or op.legalize is None:
        return None
    tensor_args = []
    for arg in call.args:
        if isinstance(arg, Constant):
            tensor_args.append(arg)
        elif isinstance(arg, ShapeExpr):
            if any(not sym.is_static(v) for v in arg.values):
                return None
        else:
            return None
    out_ann = call.ann
    if not isinstance(out_ann, TensorAnn) or out_ann.shape is None:
        return None
    if any(not sym.is_static(d) for d in out_ann.shape):
        return None

    try:
        legalized = op.legalize(call)
    except (ValueError, TypeError):
        return None
    if legalized is None:
        return None
    func = finalize_prim_func(legalized.prim_func)
    if func.sym_params:
        return None  # needs runtime symbolic values

    out_shape = tuple(sym.as_static_int(sym.simplify(d)) for d in out_ann.shape)
    out = np.zeros(out_shape, dtype=dtypes.to_numpy(out_ann.dtype))
    arrays = [a.data for a in tensor_args] + [out]
    try:
        tir.run_prim_func(func, arrays)
    except tir.TirInterpreterError:
        return None
    folded = Constant(out)
    return folded


class _Folder(ExprMutator):
    def __init__(self):
        super().__init__()
        self.folded = 0

    def visit_call(self, call: Call) -> Expr:
        visited = super().visit_call(call)
        if not isinstance(visited, Call):
            return visited
        result = _try_fold(visited)
        if result is not None:
            self.folded += 1
            return result
        return visited


@register_pass
class FoldConstant(FunctionPass):
    name = "FoldConstant"
    opt_level = 1

    def transform_function(self, name, func, mod: IRModule, ctx: PassContext):
        folder = _Folder()
        new_func = folder.visit_function(func)
        if new_func is not func:
            from ..core.expr import Function

            def lookup(gvar):
                target = mod[gvar.name_hint] if gvar.name_hint in mod else None
                return target.signature_ann() if isinstance(target, Function) else None

            rededuce_function(new_func, lookup)
        return new_func
