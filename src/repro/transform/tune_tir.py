"""Analysis-based tensor program scheduling and Ansor-style tuning (§4.6).

The paper optimizes tensor programs two ways beyond library offloading:

* **analysis-based dynamic shape-aware schedule rules** "to optimize
  tensor programs by minimizing memory loading" — here, a rule pass that
  inspects each PrimFunc's pattern kind and loop structure and attaches a
  schedule class (``matvec`` / ``gemm`` / ``reduction`` / ``ewise``), which
  the device model translates into an achieved-efficiency class;
* **Ansor-style autotuning "for rare tensor programs that our
  analysis-based schedule rules fail to handle"** — here, a search pass
  that evaluates candidate schedules under the device cost model for a
  representative shape binding and keeps the best, recording the chosen
  candidate and its predicted time as function attributes.

Both run as ordinary module passes over the cross-level IR — partial
lowering in action: tuned functions keep their ``call_tir`` call sites
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import tir
from ..core.ir_module import IRModule
from .pass_infra import Pass, PassContext, register_pass

SCHEDULE_ATTR = "schedule_class"
TUNE_ATTR = "tuned"


@register_pass
class ScheduleRules(Pass):
    """Attach analysis-derived schedule classes to every tensor program."""

    # Required: the VM's cost model reads the schedule_class attribute.
    name = "ScheduleRules"
    opt_level = 0
    required = True

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        for name, func in mod.tir_functions():
            if SCHEDULE_ATTR in func.attrs:
                continue
            func.attrs[SCHEDULE_ATTR] = classify_schedule(func)
        return mod


def classify_schedule(func: tir.PrimFunc) -> str:
    """Pick the schedule family from loop structure (no manual per-op
    annotations — the same analysis-feedback philosophy as Algorithm 1)."""
    kind = tir.pattern_kind(func)
    if func.attrs.get("op_kind") == "matmul":
        return "gemm"
    if func.attrs.get("op_kind") == "attention":
        return "attention"  # covered by the dedicated flash-style rule
    if kind == tir.PatternKind.OUT_EWISE_FUSIBLE:
        return "gemm"
    if kind == tir.PatternKind.REDUCTION:
        return "reduction"
    if kind in (tir.PatternKind.ELEMENT_WISE, tir.PatternKind.BROADCAST):
        return "ewise"
    if kind == tir.PatternKind.INJECTIVE:
        return "injective"
    return "opaque"


@dataclass
class ScheduleCandidate:
    """One point in the (mock) schedule search space."""

    name: str
    efficiency: float  # achieved fraction of roofline under this schedule


#: Default search space per schedule class: tile sizes / vectorization
#: choices abstracted to the efficiency they achieve.  Opaque programs get
#: the widest space — they are the "rare tensor programs" autotuning is for.
DEFAULT_SPACE: Dict[str, List[ScheduleCandidate]] = {
    "gemm": [
        ScheduleCandidate("tile_16x16", 0.38),
        ScheduleCandidate("tile_32x32_vec4", 0.50),
        ScheduleCandidate("tile_64x64_stages2", 0.55),
    ],
    "reduction": [
        ScheduleCandidate("tree_reduce", 0.55),
        ScheduleCandidate("warp_shuffle", 0.62),
    ],
    "ewise": [
        ScheduleCandidate("vec2", 0.55),
        ScheduleCandidate("vec4", 0.62),
    ],
    "injective": [
        ScheduleCandidate("vec2", 0.52),
        ScheduleCandidate("vec4_coalesced", 0.60),
    ],
    "opaque": [
        ScheduleCandidate("naive", 0.30),
        ScheduleCandidate("blocked", 0.42),
        ScheduleCandidate("blocked_shared", 0.50),
        ScheduleCandidate("blocked_shared_vec", 0.56),
    ],
}


@register_pass
class TuneTir(Pass):
    """Evaluate schedule candidates under the device cost model.

    ``only_opaque`` (default) mirrors the paper: autotuning is reserved for
    programs the analysis rules do not cover well.  Tuning binds every
    free symbolic variable to a representative value (``tuning_shape``) —
    the tuned schedule still executes for *all* shapes, exactly like a
    dynamic shape-aware schedule.
    """

    name = "TuneTir"
    opt_level = 2
    opt_flag = "enable_autotuning"

    def __init__(self, only_opaque: bool = True, tuning_shape: int = 64,
                 space: Optional[Dict[str, List[ScheduleCandidate]]] = None):
        self.only_opaque = only_opaque
        self.tuning_shape = tuning_shape
        self.space = space or DEFAULT_SPACE

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        # Direct .run: idempotent prerequisite, not a separate pipeline step.
        ScheduleRules().run(mod, ctx)
        for name, func in mod.tir_functions():
            klass = func.attrs[SCHEDULE_ATTR]
            if self.only_opaque and klass != "opaque":
                continue
            candidates = self.space.get(klass)
            if not candidates:
                continue
            bindings = {
                var: self.tuning_shape for var in func.free_sym_vars()
            }
            flops = tir.count_flops(func, bindings)
            nbytes = tir.count_bytes(func, bindings)
            best, best_time = None, float("inf")
            for cand in candidates:
                time = ctx.device.kernel_time(flops, nbytes, cand.efficiency,
                                              include_launch=False)
                if time < best_time:
                    best, best_time = cand, time
            func.attrs[TUNE_ATTR] = best.name
            func.attrs["tuned_efficiency"] = best.efficiency
        return mod
