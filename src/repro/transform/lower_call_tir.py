"""LowerCallTIR — expand cross-level calls to explicit allocation + DPS.

Implements the Figure 5 semantics as a rewrite (Algorithm 3 step 3)::

    lv = call_tir(f, [args], Tensor((n, 256), "f32"), sym)
        =>
    lv = memory.alloc_tensor((n, 256), "f32")
    _  = vm.call_tir_dps(f, [args], [lv], sym)

exposing every output allocation to the memory planner.  Dataflow blocks
become plain binding blocks here: the DPS calls mutate their outputs, so
the purity guarantee no longer holds past this point.
"""

from __future__ import annotations

from typing import List

from ..core.annotations import ObjectAnn, TensorAnn, TupleAnn
from ..core.expr import (
    BindingBlock,
    DataflowVar,
    Expr,
    Function,
    MatchCast,
    SeqExpr,
    Tuple,
    Var,
    VarBinding,
)
from ..core.ir_module import IRModule
from ..core import op as core_op
from .memory_ops import alloc_tensor, call_lib_dps, call_tir_dps
from .pass_infra import FunctionPass, PassContext, register_pass


@register_pass
class LowerCallTIR(FunctionPass):
    name = "LowerCallTIR"
    opt_level = 0
    required = True

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        var_remap = {}

        def remap(expr: Expr) -> Expr:
            from .fuse_ops import substitute_vars

            return substitute_vars(expr, var_remap)

        changed = False
        new_blocks = []
        for block in body.blocks:
            new_bindings: List[VarBinding] = []
            for binding in block.bindings:
                if isinstance(binding, MatchCast):
                    # The enclosing dataflow block becomes a plain block
                    # below, so the bound var must be demoted with the rest.
                    new_var = self._demote(binding.var, var_remap)
                    if new_var is not binding.var:
                        changed = True
                    new_bindings.append(
                        MatchCast(new_var, remap(binding.value), binding.target_ann)
                    )
                    continue
                value = remap(binding.value)
                from ..core.expr import If as IfExpr

                if isinstance(value, IfExpr):
                    true_b = self._lower_branch(value.true_branch, mod, ctx)
                    false_b = self._lower_branch(value.false_branch, mod, ctx)
                    if true_b is not value.true_branch or false_b is not value.false_branch:
                        changed = True
                    new_if = IfExpr(value.cond, true_b, false_b)
                    new_if.ann = binding.value.ann
                    value = new_if
                is_tir = core_op.is_call_to(value, core_op.call_tir_op)
                is_lib = core_op.is_call_to(value, core_op.call_dps_library_op)
                if not (is_tir or is_lib):
                    new_var = self._demote(binding.var, var_remap)
                    new_bindings.append(VarBinding(new_var, value))
                    continue
                changed = True
                callee, args, sym_args = core_op.call_tir_parts(value)
                out_anns = value.sinfo_args
                out_vars: List[Var] = []
                for k, ann in enumerate(out_anns):
                    assert isinstance(ann, TensorAnn) and ann.shape is not None
                    alloc = alloc_tensor(ann.shape, ann.dtype)
                    alloc.ann = TensorAnn(ann.shape, ann.dtype)
                    alloc.provenance = value.provenance
                    if len(out_anns) == 1:
                        out_var = self._demote(binding.var, var_remap)
                    else:
                        out_var = Var(f"{binding.var.name_hint}_o{k}", alloc.ann)
                    new_bindings.append(VarBinding(out_var, alloc))
                    out_vars.append(out_var)
                if is_tir:
                    dps = call_tir_dps(callee, list(args), out_vars, sym_args)
                else:
                    dps = call_lib_dps(callee.global_symbol, list(args), out_vars)
                dps.ann = ObjectAnn()
                dps.provenance = value.provenance
                new_bindings.append(VarBinding(Var("_", ObjectAnn()), dps))
                if len(out_anns) > 1:
                    tup = Tuple(out_vars)
                    tup.ann = TupleAnn([v.ann for v in out_vars])
                    new_var = self._demote(binding.var, var_remap)
                    new_bindings.append(VarBinding(new_var, tup))
            # Purity is gone after introducing DPS mutation: plain block.
            new_blocks.append(BindingBlock(new_bindings))
            changed = changed or block.is_dataflow

        if not changed:
            return func
        new_body = SeqExpr(new_blocks, remap(body.body))
        new_body.ann = body.ann
        out = Function(func.params, new_body, func.ret_ann, func.attrs, func.name)
        out.ann = func.ann
        return out

    def _lower_branch(self, branch, mod, ctx):
        """Lower a branch SeqExpr through the same rewrite."""
        if not isinstance(branch, SeqExpr):
            return branch
        wrapper = Function([], branch, None, None, "branch")
        lowered = self.transform_function("branch", wrapper, mod, ctx)
        return lowered.body

    @staticmethod
    def _demote(var: Var, var_remap) -> Var:
        """DataflowVars cannot live in plain blocks; demote to plain Vars."""
        if isinstance(var, DataflowVar):
            new = Var(var.name_hint, var.ann)
            var_remap[var._id] = new
            return new
        return var
