"""CUDA Graph offloading (§4.5).

After static memory planning the kernel launch sequence of a function
touches only statically allocated storages, which is exactly the condition
the GPU driver imposes for graph capture.  This pass analyzes the lowered
function and marks it for capture/replay when every operation is
graph-safe:

* planned allocations (``memory.alloc_storage`` with static size,
  ``memory.alloc_tensor_from_storage``) — static memory;
* ``vm.call_tir_dps`` / ``vm.call_lib_dps`` kernel launches;
* shape-heap arithmetic, tuples, aliases (host-side, cheap).

Pool allocations, data-dependent builtins, control flow and nested calls
disqualify a function.  At runtime the VM captures on the first execution
of each shape signature and replays afterwards, paying one graph-launch
overhead instead of per-kernel launch overhead (the 1–2% of Fig. 17).
"""

from __future__ import annotations

from ..core.expr import (
    Call,
    Constant,
    ExternFunc,
    Function,
    GlobalVar,
    If,
    Op,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
)
from ..core.ir_module import IRModule
from .memory_ops import (
    alloc_storage_op,
    alloc_tensor_from_storage_op,
    alloc_tensor_op,
    call_lib_dps_op,
    call_tir_dps_op,
    kill_op,
)
from .pass_infra import FunctionPass, PassContext, register_pass

#: Backends with driver-level static execution graphs.  The paper notes the
#: principle generalizes to "any GPU backend that supports static execution
#: graphs"; CUDA is the one it evaluates.
GRAPH_BACKENDS = ("cuda",)

MIN_KERNELS = 2


@register_pass
class CUDAGraphOffload(FunctionPass):
    name = "CUDAGraphOffload"
    opt_level = 1
    opt_flag = "enable_cuda_graph"

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        if ctx.device.backend not in GRAPH_BACKENDS:
            return func
        if func.attrs.get("memory_planned") != "static":
            return func
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        kernels = 0
        for block in body.blocks:
            for binding in block.bindings:
                safety = self._binding_safety(binding.value)
                if safety is None:
                    return func
                kernels += safety
        if kernels < MIN_KERNELS:
            return func

        attrs = dict(func.attrs)
        attrs["cuda_graph"] = True
        attrs["graph_dynamic_dims"] = self._dynamic_dims(func, ctx)
        out = Function(func.params, func.body, func.ret_ann, attrs, func.name)
        out.ann = func.ann
        return out

    @staticmethod
    def _dynamic_dims(func: Function, ctx: PassContext):
        """Parameter dims excluded from the capture key.

        A symbolic dimension whose variables all carry declared upper
        bounds was planned with worst-case storage; the captured graph's
        memory stays valid as its value varies, so replay only needs the
        kernel parameters updated (cudaGraphExecUpdate-style).  Static and
        unbounded dims stay in the key.
        """
        from .. import sym
        from ..core.annotations import TensorAnn

        dynamic = {}
        for idx, param in enumerate(func.params):
            ann = param.ann
            if not isinstance(ann, TensorAnn) or ann.shape is None:
                continue
            dims = []
            for d, dim in enumerate(ann.shape):
                fvs = sym.free_vars(dim)
                if fvs and all(v.name in ctx.sym_var_upper_bounds for v in fvs):
                    dims.append(d)
            if dims:
                dynamic[idx] = tuple(dims)
        return dynamic

    @staticmethod
    def _binding_safety(value) -> "int | None":
        """Return kernel count contribution, or None when graph-unsafe."""
        if isinstance(value, (Var, Constant, ShapeExpr, Tuple, TupleGetItem)):
            return 0
        if isinstance(value, If):
            return None
        if isinstance(value, Call):
            op = value.op
            if op in (call_tir_dps_op, call_lib_dps_op):
                return 1
            if op in (alloc_storage_op, alloc_tensor_from_storage_op, kill_op):
                return 0
            if op is alloc_tensor_op:
                return None  # dynamic pool allocation: not static memory
            if isinstance(op, (GlobalVar, ExternFunc)):
                return None  # nested call / data-dependent builtin
            if isinstance(op, Op):
                return None
        return None
