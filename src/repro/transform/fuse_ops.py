"""FuseOps — dynamic shape-aware operator fusion (Algorithm 2, §4.2).

Groups chains of ``call_tir`` bindings inside dataflow blocks using the
pattern kinds produced by the analysis-feedback pass (Algorithm 1), and
outlines each group into a *subgraph function*.  Grouping rules follow the
classic TVM lattice, driven entirely by analyzed (not hand-annotated)
pattern kinds:

* elementwise / broadcast / injective chains fuse together;
* injective producers fuse into the inputs of an OutputEwiseFusible
  consumer (the Fig. 9 quantization-decode-into-matmul case);
* elementwise epilogues fuse into the back of OutputEwiseFusible or
  Reduction producers (matmul+ReLU);
* Opaque never fuses; at most one "heavy" (OEF/Reduction) op per group.

Symbolic shapes are preserved throughout: the outlined function's parameter
annotations may contain symbolic *expressions*, and when the expressions'
variables cannot be re-derived from parameter shapes, an extra ``Shape``
parameter threads them in (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .. import sym
from ..core.annotations import ShapeAnn, TensorAnn
from ..core.expr import (
    Call,
    Constant,
    DataflowBlock,
    Expr,
    Function,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
    VarBinding,
)
from ..core.ir_module import IRModule
from ..core.deduction import rededuce_function
from ..core import op as core_op
from ..obs import provenance as _prov
from ..tir.analysis import PatternKind
from .annotate_pattern import pattern_of
from .pass_infra import FunctionPass, PassContext, register_pass


def substitute_vars(expr: Expr, var_map: Dict[int, Expr]) -> Expr:
    """Replace Var references (by identity) throughout an expression."""
    if isinstance(expr, Var):
        return var_map.get(expr._id, expr)
    if isinstance(expr, Call):
        new = Call(
            substitute_vars(expr.op, var_map),
            [substitute_vars(a, var_map) for a in expr.args],
            expr.attrs,
            expr.sinfo_args,
        )
        new.ann = expr.ann
        new.provenance = expr.provenance
        return new
    if isinstance(expr, Tuple):
        new = Tuple([substitute_vars(f, var_map) for f in expr.fields])
        new.ann = expr.ann
        return new
    if isinstance(expr, TupleGetItem):
        new = TupleGetItem(substitute_vars(expr.tuple_value, var_map), expr.index)
        new.ann = expr.ann
        return new
    return expr


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)
        return min(ra, rb)


def _mergeable(producer_kind, consumer_kind, producer_heavy, consumer_heavy):
    """Fusion lattice: may a producer group merge into its consumer group?"""
    if producer_heavy + consumer_heavy > 1:
        return None
    injective = PatternKind.INJECTIVE
    if producer_kind <= injective and consumer_kind <= injective:
        return max(producer_kind, consumer_kind)
    if producer_kind <= injective and consumer_kind in (
        PatternKind.OUT_EWISE_FUSIBLE,
        PatternKind.REDUCTION,
    ):
        return consumer_kind
    if (
        producer_kind in (PatternKind.OUT_EWISE_FUSIBLE, PatternKind.REDUCTION)
        and consumer_kind == PatternKind.ELEMENT_WISE
    ):
        return producer_kind
    return None


@register_pass
class FuseOps(FunctionPass):
    name = "FuseOps"
    opt_level = 1
    opt_flag = "enable_fusion"

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        if func.attrs.get("fusion_group"):
            return func
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        changed = False
        new_blocks = []
        for block in body.blocks:
            if block.is_dataflow:
                new_block, block_changed = self._fuse_block(name, block, body, mod)
                changed = changed or block_changed
                new_blocks.append(new_block)
            else:
                new_blocks.append(block)
        if not changed:
            return func
        new_body = SeqExpr(new_blocks, body.body)
        new_body.ann = body.ann
        out = Function(func.params, new_body, func.ret_ann, func.attrs, func.name)
        out.ann = func.ann

        def lookup(gvar):
            target = mod[gvar.name_hint] if gvar.name_hint in mod else None
            return target.signature_ann() if isinstance(target, Function) else None

        rededuce_function(out, lookup)
        return out

    # -- group discovery ---------------------------------------------------------

    def _fuse_block(self, fn_name, block: DataflowBlock, body: SeqExpr, mod: IRModule):
        bindings = block.bindings
        n = len(bindings)
        var_to_idx: Dict[int, int] = {}
        kinds: Dict[int, PatternKind] = {}
        for i, binding in enumerate(bindings):
            var_to_idx[binding.var._id] = i
            value = binding.value
            if core_op.is_call_to(value, core_op.call_tir_op):
                callee, _, _ = core_op.call_tir_parts(value)
                kinds[i] = pattern_of(mod, callee.name_hint)

        # Use counts of every var across the whole function body (a var used
        # twice cannot be absorbed into a consumer without duplication).
        use_count: Dict[int, int] = {}

        def count(expr: Expr) -> None:
            from ..core.expr import If as IfExpr

            if isinstance(expr, Var):
                use_count[expr._id] = use_count.get(expr._id, 0) + 1
                return
            if isinstance(expr, Call):
                for a in expr.args:
                    count(a)
            elif isinstance(expr, Tuple):
                for f in expr.fields:
                    count(f)
            elif isinstance(expr, TupleGetItem):
                count(expr.tuple_value)
            elif isinstance(expr, IfExpr):
                count(expr.cond)
                for branch in (expr.true_branch, expr.false_branch):
                    if isinstance(branch, SeqExpr):
                        for block in branch.blocks:
                            for b in block.bindings:
                                count(b.value)
                        count(branch.body)
                    else:
                        count(branch)

        for blk in body.blocks:
            for b in blk.bindings:
                count(b.value)
        count(body.body)

        uf = _UnionFind(n)
        group_kind: Dict[int, PatternKind] = dict(kinds)
        heavy = {
            i: 1 if kinds.get(i) in (PatternKind.OUT_EWISE_FUSIBLE, PatternKind.REDUCTION) else 0
            for i in kinds
        }

        for i, binding in enumerate(bindings):
            if i not in kinds:
                continue
            value = binding.value
            _, args, _ = core_op.call_tir_parts(value)
            for arg in args:
                if not isinstance(arg, Var) or arg._id not in var_to_idx:
                    continue
                p = var_to_idx[arg._id]
                if p not in kinds:
                    continue
                if use_count.get(arg._id, 0) != 1:
                    continue
                rp, rc = uf.find(p), uf.find(i)
                if rp == rc:
                    continue
                merged = _mergeable(
                    group_kind[rp], group_kind[rc], heavy[rp], heavy[rc]
                )
                if merged is None:
                    continue
                root = uf.union(rp, rc)
                other = rc if root == rp else rp
                group_kind[root] = merged
                heavy[root] = heavy[rp] + heavy[rc]
                group_kind.pop(other, None)
                heavy.pop(other, None)

        # Collect groups of size >= 2.
        members: Dict[int, List[int]] = {}
        for i in kinds:
            members.setdefault(uf.find(i), []).append(i)
        groups = [sorted(m) for m in members.values() if len(m) >= 2]
        if not groups:
            return block, False

        # Outline each group; rebuild the binding list.
        replaced: Dict[int, Optional[VarBinding]] = {}
        for group in groups:
            outlined = self._outline_group(fn_name, bindings, group, mod)
            if outlined is None:
                continue
            for i in group[:-1]:
                replaced[i] = None
            replaced[group[-1]] = outlined

        if not replaced:
            return block, False
        new_bindings = []
        for i, binding in enumerate(bindings):
            if i in replaced:
                if replaced[i] is not None:
                    new_bindings.append(replaced[i])
            else:
                new_bindings.append(binding)
        return DataflowBlock(new_bindings), True

    # -- outlining ------------------------------------------------------------------

    def _outline_group(self, fn_name, bindings, group: List[int], mod: IRModule):
        group_set: Set[int] = set(group)
        bound_here = {bindings[i].var._id for i in group}

        # The group has exactly one output by construction (single-use merge
        # rule), and it is the last member.
        out_binding = bindings[group[-1]]

        # External inputs in first-use order (Vars and Constants).
        inputs: List[Expr] = []
        seen: Set[int] = set()

        def scan(expr: Expr) -> None:
            if isinstance(expr, Var):
                if expr._id not in bound_here and expr._id not in seen:
                    seen.add(expr._id)
                    inputs.append(expr)
                return
            if isinstance(expr, Constant):
                if id(expr) not in seen:
                    seen.add(id(expr))
                    inputs.append(expr)
                return
            if isinstance(expr, Call):
                for a in expr.args:
                    scan(a)
            elif isinstance(expr, Tuple):
                for f in expr.fields:
                    scan(f)
            elif isinstance(expr, TupleGetItem):
                scan(expr.tuple_value)

        for i in group:
            scan(bindings[i].value)

        # Fresh parameters mirroring each input's annotation.
        params: List[Var] = []
        var_map: Dict[int, Expr] = {}
        const_map: List = []
        for idx, inp in enumerate(inputs):
            ann = inp.ann
            pname = inp.name_hint if isinstance(inp, Var) else f"const{idx}"
            param = Var(pname, ann)
            params.append(param)
            if isinstance(inp, Var):
                var_map[inp._id] = param
            else:
                const_map.append((inp, param))

        # Symbolic variables used by the group vs. derivable from params.
        used_syms: Dict = {}

        def note_syms(exprs) -> None:
            for e in exprs:
                for v in sym.free_vars(e):
                    used_syms.setdefault(v.key(), v)

        for i in group:
            value = bindings[i].value
            for ann in value.sinfo_args:
                if isinstance(ann, TensorAnn) and ann.shape is not None:
                    note_syms(ann.shape)
            _, args, sym_args = core_op.call_tir_parts(value)
            if sym_args is not None:
                note_syms(sym_args.values)
            for arg in args:
                if isinstance(arg, ShapeExpr):
                    note_syms(arg.values)

        derivable: Set = set()
        for param in params:
            ann = param.ann
            if isinstance(ann, TensorAnn) and ann.shape is not None:
                for dim in ann.shape:
                    if isinstance(dim, sym.SymVar):
                        derivable.add(dim.key())
        missing = [v for key, v in sorted(used_syms.items()) if key not in derivable]

        shape_param = None
        if missing:
            shape_param = Var("s", ShapeAnn(missing))
            params.append(shape_param)

        # Rebuild the group bindings against the new parameters.
        inner_bindings = []
        const_subst = {id(c): p for c, p in const_map}

        def substitute_all(expr: Expr) -> Expr:
            if isinstance(expr, Constant) and id(expr) in const_subst:
                return const_subst[id(expr)]
            if isinstance(expr, Var):
                return var_map.get(expr._id, expr)
            if isinstance(expr, Call):
                new = Call(
                    expr.op,
                    [substitute_all(a) for a in expr.args],
                    expr.attrs,
                    expr.sinfo_args,
                )
                new.ann = expr.ann
                new.provenance = expr.provenance
                return new
            if isinstance(expr, Tuple):
                new = Tuple([substitute_all(f) for f in expr.fields])
                new.ann = expr.ann
                return new
            if isinstance(expr, TupleGetItem):
                new = TupleGetItem(substitute_all(expr.tuple_value), expr.index)
                new.ann = expr.ann
                return new
            return expr

        for i in group:
            binding = bindings[i]
            inner_bindings.append(VarBinding(binding.var, substitute_all(binding.value)))

        gv = Var("gv", out_binding.var.ann)
        inner_bindings.append(VarBinding(gv, inner_bindings[-1].var))
        inner_body = SeqExpr([DataflowBlock(inner_bindings)], gv)
        inner_body.ann = gv.ann

        fused_name = self._fused_name(bindings, group, mod)
        fused_fn = Function(
            params,
            inner_body,
            ret_ann=out_binding.var.ann,
            attrs={"fusion_group": True, "primitive": True},
            name=fused_name,
        )
        fused_fn.ann = fused_fn.signature_ann()
        gvar = mod.add_unique(fused_name, fused_fn)

        call_args: List[Expr] = list(inputs)
        if shape_param is not None:
            call_args.append(ShapeExpr(missing))
        call = Call(gvar, call_args)
        call.ann = out_binding.var.ann
        # The group call descends from every member op, in program order.
        call.provenance = _prov.merge(*(bindings[i].value for i in group))
        return VarBinding(out_binding.var, call)

    @staticmethod
    def _fused_name(bindings, group, mod: IRModule) -> str:
        parts = []
        for i in group:
            callee, _, _ = core_op.call_tir_parts(bindings[i].value)
            prim = mod[callee.name_hint]
            parts.append(prim.attrs.get("source_op", callee.name_hint).replace(".", "_"))
        return "fused_" + "_".join(parts[:4])
