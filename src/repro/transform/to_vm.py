"""VMCodegen — shape lowering and instruction emission (§4.7).

The final pipeline stage: "a fundamental task is to associate symbolic
variables with concrete shape values and compute symbolic expressions at
runtime.  We create an integer host tensor to store runtime values of all
symbolic expressions in the program."

For each function the codegen:

1. emits ``MatchShape`` for every parameter — populating symbolic-variable
   slots of the per-function shape heap on first occurrence and asserting
   the boundary checks otherwise (§4.1's lightweight runtime checks);
2. materializes derived symbolic expressions on demand with
   ``ComputeShape`` (the "generated tensor programs that load from the
   tensor, evaluate symbolic expressions, and store results");
3. maps every binding to VM instructions, erasing annotations: the result
   is "a program comprised mainly of low-level function calls".
"""

from __future__ import annotations

from typing import Dict, List

from .. import sym, tir
from ..core.annotations import ShapeAnn, TensorAnn
from ..core.expr import (
    Call,
    Constant,
    Expr,
    ExternFunc,
    Function,
    GlobalVar,
    If as IfExpr,
    MatchCast,
    Op,
    PrimValue,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
)
from ..core.ir_module import IRModule
from ..runtime import vm as rvm
from .memory_ops import (
    alloc_storage_op,
    alloc_tensor_from_storage_op,
    alloc_tensor_op,
    call_lib_dps_op,
    call_tir_dps_op,
    dps_parts,
    kill_op,
)
from .pass_infra import Pass, PassContext, register_pass


class VMCodegenError(Exception):
    pass


class _FunctionCodegen:
    def __init__(self, exe: rvm.Executable, mod: IRModule, func: Function):
        self.exe = exe
        self.mod = mod
        self.func = func
        self.reg_map: Dict[int, int] = {}
        self.num_regs = 0
        self.slot_map: Dict = {}  # sym var key / canonical expr key -> slot
        self.num_slots = 0
        self.instrs: List[rvm.Instr] = []

    # -- registers and slots -----------------------------------------------------

    def new_reg(self) -> int:
        reg = self.num_regs
        self.num_regs += 1
        return reg

    def reg_of(self, var: Var) -> int:
        if var._id not in self.reg_map:
            raise VMCodegenError(f"use of unbound variable {var.name_hint!r}")
        return self.reg_map[var._id]

    def new_slot(self) -> int:
        slot = self.num_slots
        self.num_slots += 1
        return slot

    def dim_spec(self, expr: sym.ExprLike, body: List[rvm.Instr]) -> rvm.DimSpec:
        """Materialize a symbolic expression as a const or heap slot."""
        expr = sym.PrimExpr.convert(expr)
        if sym.is_static(expr):
            return rvm.const_dim(sym.as_static_int(sym.simplify(expr)))
        if isinstance(expr, sym.SymVar):
            slot = self.slot_map.get(expr.key())
            if slot is None:
                raise VMCodegenError(
                    f"symbolic variable '{expr.name}' has no runtime value source"
                )
            return rvm.slot_dim(slot)
        key = sym.canonical_key(expr)
        slot = self.slot_map.get(("expr", key))
        if slot is None:
            var_slots = []
            for var in sym.free_vars(expr):
                vslot = self.slot_map.get(var.key())
                if vslot is None:
                    raise VMCodegenError(
                        f"symbolic variable '{var.name}' has no runtime value source"
                    )
                var_slots.append((var, vslot))
            slot = self.new_slot()
            body.append(rvm.ComputeShape(slot, expr, var_slots))
            self.slot_map[("expr", key)] = slot
        return rvm.slot_dim(slot)

    # -- parameter matching ----------------------------------------------------------

    def match_annotation(self, reg: int, ann, context: str,
                         body: List[rvm.Instr]) -> None:
        """Emit shape checks / symbolic variable stores for a value."""
        if isinstance(ann, TensorAnn):
            if ann.shape is None:
                if ann.ndim != -1 or ann.dtype is not None:
                    body.append(
                        rvm.MatchShape(
                            reg, [], ndim=None if ann.ndim == -1 else ann.ndim,
                            dtype=ann.dtype, context=context,
                        )
                    )
                return
            actions = self._dim_actions(ann.shape, body)
            body.append(
                rvm.MatchShape(reg, actions, ndim=len(ann.shape),
                               dtype=ann.dtype, context=context)
            )
        elif isinstance(ann, ShapeAnn):
            if ann.values is None:
                if ann.ndim != -1:
                    body.append(
                        rvm.MatchShape(reg, [], ndim=ann.ndim, context=context)
                    )
                return
            actions = self._dim_actions(ann.values, body)
            body.append(
                rvm.MatchShape(reg, actions, ndim=len(ann.values), context=context)
            )
        # Tuples / Objects / Prims: no runtime shape to match.

    def _dim_actions(self, dims, body: List[rvm.Instr]) -> List:
        actions = []
        for d, dim in enumerate(dims):
            if sym.is_static(dim):
                actions.append((d, "assert_const", sym.as_static_int(sym.simplify(dim))))
            elif isinstance(dim, sym.SymVar):
                slot = self.slot_map.get(dim.key())
                if slot is None:
                    slot = self.new_slot()
                    self.slot_map[dim.key()] = slot
                    actions.append((d, "store", slot))
                else:
                    actions.append((d, "assert_slot", slot))
            else:
                # Composite expression: assert when all vars already bound,
                # otherwise skip (cannot invert the expression).
                if all(
                    v.key() in self.slot_map for v in sym.free_vars(dim)
                ):
                    spec = self.dim_spec(dim, body)
                    if spec[0] == "slot":
                        actions.append((d, "assert_slot", spec[1]))
        return actions

    # -- main ------------------------------------------------------------------------

    def build(self) -> rvm.VMFunction:
        body = self.instrs
        for param in self.func.params:
            reg = self.new_reg()
            self.reg_map[param._id] = reg
        for param in self.func.params:
            self.match_annotation(
                self.reg_map[param._id], param.ann,
                f"{self.func.name}: param {param.name_hint}", body,
            )

        result_reg = self.compile_seq(self.func.body, body)
        body.append(rvm.Ret(result_reg))
        attrs = {
            k: v
            for k, v in self.func.attrs.items()
            if k in ("cuda_graph", "graph_dynamic_dims", "memory_planned")
        }
        return rvm.VMFunction(
            self.func.name or "fn",
            [p.name_hint for p in self.func.params],
            body,
            num_regs=self.num_regs,
            num_slots=self.num_slots,
            attrs=attrs,
        )

    def compile_seq(self, seq: Expr, body: List[rvm.Instr]) -> int:
        if not isinstance(seq, SeqExpr):
            return self.compile_expr(seq, body)
        for block in seq.blocks:
            for binding in block.bindings:
                self.compile_binding(binding, body)
        return self.compile_expr(seq.body, body)

    def compile_binding(self, binding, body: List[rvm.Instr]) -> None:
        if isinstance(binding, MatchCast):
            reg = self.compile_expr(binding.value, body)
            self.match_annotation(
                reg, binding.target_ann,
                f"{self.func.name}: match_cast {binding.var.name_hint}", body,
            )
            self.reg_map[binding.var._id] = reg
            return
        value = binding.value
        if isinstance(value, Var):
            self.reg_map[binding.var._id] = self.reg_of(value)
            return
        reg = self.compile_expr(value, body)
        self.reg_map[binding.var._id] = reg

    # -- expressions ---------------------------------------------------------------------

    def compile_expr(self, expr: Expr, body: List[rvm.Instr]) -> int:
        if isinstance(expr, Var):
            return self.reg_of(expr)
        if isinstance(expr, Constant):
            idx = self.exe.add_constant(expr.data)
            dst = self.new_reg()
            body.append(rvm.LoadConst(dst, idx))
            return dst
        if isinstance(expr, ShapeExpr):
            dims = [self.dim_spec(v, body) for v in expr.values]
            dst = self.new_reg()
            body.append(rvm.MakeShape(dst, dims))
            return dst
        if isinstance(expr, PrimValue):
            dims = [self.dim_spec(expr.value, body)]
            dst = self.new_reg()
            body.append(rvm.MakeShape(dst, dims))
            return dst
        if isinstance(expr, Tuple):
            srcs = [self.compile_expr(f, body) for f in expr.fields]
            dst = self.new_reg()
            body.append(rvm.MakeTupleI(dst, srcs))
            return dst
        if isinstance(expr, TupleGetItem):
            src = self.compile_expr(expr.tuple_value, body)
            dst = self.new_reg()
            body.append(rvm.GetItemI(dst, src, expr.index))
            return dst
        if isinstance(expr, Call):
            return self.compile_call(expr, body)
        if isinstance(expr, IfExpr):
            cond = self.compile_expr(expr.cond, body)
            # Branch-local ComputeShape results must not leak: an else-path
            # (or post-If) use would read a slot the taken branch never
            # computed.  Snapshot and restore the slot cache per branch.
            outer_slots = dict(self.slot_map)
            then_body: List[rvm.Instr] = []
            then_out = self.compile_seq(expr.true_branch, then_body)
            self.slot_map = dict(outer_slots)
            else_body: List[rvm.Instr] = []
            else_out = self.compile_seq(expr.false_branch, else_body)
            self.slot_map = outer_slots
            dst = self.new_reg()
            body.append(rvm.If(cond, then_body, then_out, else_body, else_out, dst))
            return dst
        raise VMCodegenError(f"cannot compile {type(expr).__name__} to VM")

    def compile_call(self, call: Call, body: List[rvm.Instr]) -> int:
        op = call.op
        if isinstance(op, Op):
            return self.compile_op_call(op, call, body)
        if isinstance(op, GlobalVar):
            args = [self.compile_expr(a, body) for a in call.args]
            dst = self.new_reg()
            body.append(rvm.CallFunc(dst, op.name_hint, args))
            return dst
        if isinstance(op, ExternFunc):
            args = [self.compile_expr(a, body) for a in call.args]
            dst = self.new_reg()
            body.append(
                rvm.CallBuiltin(dst, op.global_symbol, args, prov=call.provenance)
            )
            return dst
        raise VMCodegenError(
            f"cannot compile call with callee {type(op).__name__}; "
            "first-class function values must be resolved before codegen"
        )

    def compile_op_call(self, op: Op, call: Call, body: List[rvm.Instr]) -> int:
        if op is alloc_storage_op:
            size_spec = self.dim_spec(call.args[0].values[0], body)
            dst = self.new_reg()
            body.append(
                rvm.AllocStorage(dst, size_spec,
                                 escapes=bool(call.attrs.get("escapes")),
                                 prov=call.provenance)
            )
            return dst
        if op is alloc_tensor_from_storage_op:
            storage_reg = self.compile_expr(call.args[0], body)
            dims = [self.dim_spec(v, body) for v in call.args[1].values]
            dst = self.new_reg()
            body.append(
                rvm.AllocTensor(dst, dims, call.attrs["dtype"], storage=storage_reg,
                                prov=call.provenance)
            )
            return dst
        if op is alloc_tensor_op:
            dims = [self.dim_spec(v, body) for v in call.args[0].values]
            dst = self.new_reg()
            body.append(
                rvm.AllocTensor(dst, dims, call.attrs["dtype"],
                                escapes=bool(call.attrs.get("escapes")),
                                prov=call.provenance)
            )
            return dst
        if op is kill_op:
            reg = self.compile_expr(call.args[0], body)
            body.append(rvm.KillTensor(reg, prov=call.provenance))
            return reg
        if op is call_tir_dps_op or op is call_lib_dps_op:
            callee, inputs, outputs, sym_args = dps_parts(call)
            in_regs = [self.compile_expr(a, body) for a in inputs]
            out_regs = [self.compile_expr(a, body) for a in outputs]
            if op is call_tir_dps_op:
                name = callee.name_hint
                self._ensure_tir(name)
                specs = []
                if sym_args is not None:
                    specs = [self.dim_spec(v, body) for v in sym_args.values]
                body.append(
                    rvm.CallTir(name, in_regs, out_regs, specs, prov=call.provenance)
                )
            else:
                body.append(
                    rvm.CallLib(callee.global_symbol, in_regs, out_regs,
                                prov=call.provenance)
                )
            return out_regs[0] if out_regs else self.new_reg()
        raise VMCodegenError(
            f"operator {op.name!r} survived to codegen; the lowering pipeline "
            "must legalize and lower it first"
        )

    def _ensure_tir(self, name: str) -> None:
        if name in self.exe.tir_funcs:
            return
        func = self.mod[name]
        if not isinstance(func, tir.PrimFunc):
            raise VMCodegenError(f"{name!r} is not a tensor program")
        self.exe.tir_funcs[name] = func


@register_pass
class VMCodegen(Pass):
    """Compile every Relax function of a fully lowered module."""

    name = "VMCodegen"
    opt_level = 0
    required = True

    def run(self, mod: IRModule, ctx: PassContext):  # returns Executable
        exe = rvm.Executable()
        for name, func in mod.relax_functions():
            codegen = _FunctionCodegen(exe, mod, func)
            vm_func = codegen.build()
            vm_func.name = name
            exe.functions[name] = vm_func
        return exe
