"""FuseTensorIR — merge the tensor programs of a fusion group (§4.2).

The cross-level half of operator fusion: for every subgraph function
produced by FuseOps, merge the tensor programs it calls into a single
PrimFunc (instantiating each callee's stages with unified symbolic shapes
and shared intermediate buffers, then inlining spatial producers), and
replace the subgraph-function call in the caller with one ``call_tir``
(Fig. 9's final stage, yellow).

Symbolic shape handling mirrors §4.1 throughout: callee shape variables are
unified against the graph-level annotations at each internal call, and the
merged tensor program's non-inferable variables surface as explicit
symbolic parameters threaded from the caller via the trailing ShapeExpr.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import sym, tir
from ..core.annotations import ShapeAnn, TensorAnn
from ..core.expr import (
    Call,
    Expr,
    Function,
    GlobalVar,
    SeqExpr,
    ShapeExpr,
    Var,
)
from ..core.ir_module import IRModule
from ..core.deduction import rededuce_function
from ..core import op as core_op
from ..core.visitor import ExprMutator
from ..ops.registry import needed_sym_params
from .pass_infra import Pass, PassContext, register_pass


class _FusedPrim:
    def __init__(self, prim: tir.PrimFunc, sub_fn: Function):
        self.prim = prim
        self.sub_fn = sub_fn


@register_pass
class FuseTensorIR(Pass):
    # Required: fusion groups created by FuseOps *or* FuseByPattern must
    # always be materialized into tensor programs before lowering.
    name = "FuseTensorIR"
    opt_level = 0
    required = True

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        out = mod.copy()
        fused: Dict[str, _FusedPrim] = {}
        for name, func in list(mod.relax_functions()):
            if func.attrs.get("fusion_group"):
                merged = self._merge(name, func, out)
                if merged is not None:
                    fused[name] = merged
        if not fused:
            return out

        # Register merged tensor programs and rewrite all call sites.
        prim_gvars: Dict[str, GlobalVar] = {}
        for name, bundle in fused.items():
            prim_gvars[name] = out.add_unique(bundle.prim.name, bundle.prim)

        for name, func in list(out.relax_functions()):
            if name in fused:
                continue
            rewriter = _CallRewriter(out, fused, prim_gvars)
            new_func = rewriter.visit_function(func)
            if new_func is not func:
                def lookup(gvar):
                    target = out[gvar.name_hint] if gvar.name_hint in out else None
                    return (
                        target.signature_ann() if isinstance(target, Function) else None
                    )

                rededuce_function(new_func, lookup)
                out.add(name, new_func)

        # Remove subgraph functions whose every call site was rewritten.
        still_used = _referenced_globals(out)
        for name in fused:
            if name not in still_used:
                out.remove(name)
        _remove_unused_tir(out)
        return out

    # -- merging one subgraph function ------------------------------------------------

    def _merge(self, name: str, func: Function, mod: IRModule) -> Optional[_FusedPrim]:
        body = func.body
        if not isinstance(body, SeqExpr) or len(body.blocks) != 1:
            return None
        bindings = body.blocks[0].bindings

        # Map graph variables to buffers.
        var_buffers: Dict[int, tir.Buffer] = {}
        param_buffers: List[tir.Buffer] = []
        tensor_params: List[Var] = []
        shape_param_vars: List[sym.SymVar] = []
        for param in func.params:
            ann = param.ann
            if isinstance(ann, TensorAnn):
                buf = tir.Buffer(param.name_hint, ann.shape, ann.dtype, scope="param")
                var_buffers[param._id] = buf
                param_buffers.append(buf)
                tensor_params.append(param)
            elif isinstance(ann, ShapeAnn) and ann.values is not None:
                for value in ann.values:
                    if isinstance(value, sym.SymVar):
                        shape_param_vars.append(value)
            else:
                return None

        # Output: the seq body var aliases the last call binding.
        out_var = body.body
        if not isinstance(out_var, Var):
            return None
        alias_target: Dict[int, int] = {}
        out_ann = out_var.ann
        if not isinstance(out_ann, TensorAnn) or out_ann.shape is None:
            return None
        output_buffer = tir.Buffer("Y_out", out_ann.shape, out_ann.dtype, scope="param")

        # Resolve which binding produces the output (follow aliases).
        producing: Dict[int, Expr] = {}
        final_producer_id = None
        for binding in bindings:
            value = binding.value
            if isinstance(value, Var):
                alias_target[binding.var._id] = value._id
            else:
                producing[binding.var._id] = value
        target = out_var._id
        while target in alias_target:
            target = alias_target[target]
        final_producer_id = target

        stages: List[tir.Stage] = []
        attrs: Dict = {"fused": True}
        for binding in bindings:
            value = binding.value
            if isinstance(value, Var):
                var_buffers[binding.var._id] = var_buffers.get(value._id)
                continue
            if not core_op.is_call_to(value, core_op.call_tir_op):
                return None
            callee_gv, args, sym_args = core_op.call_tir_parts(value)
            callee = mod[callee_gv.name_hint]
            if not isinstance(callee, tir.PrimFunc):
                return None
            if callee.attrs.get("op_kind") == "matmul":
                attrs["op_kind"] = "matmul"
            if callee.attrs.get("source_op"):
                attrs.setdefault("source_ops", []).append(callee.attrs["source_op"])

            # Buffers for this call's inputs.
            arg_buffers = []
            for arg in args:
                if isinstance(arg, Var):
                    buf = var_buffers.get(arg._id)
                    if buf is None:
                        return None
                    arg_buffers.append(buf)
                else:
                    return None  # FuseOps parameterizes constants

            # Output buffer for this call.
            if binding.var._id == final_producer_id:
                out_buf = output_buffer
            else:
                ann = binding.var.ann
                if not isinstance(ann, TensorAnn) or ann.shape is None:
                    return None
                out_buf = tir.Buffer(
                    f"T_{binding.var.name_hint}", ann.shape, ann.dtype, scope="local"
                )
            var_buffers[binding.var._id] = out_buf

            # Unify callee symbolic variables with the graph-level shapes.
            var_map: Dict[sym.SymVar, sym.ExprLike] = {}
            callee_bufs = list(callee.params)
            actual_bufs = arg_buffers + [out_buf]
            if len(callee_bufs) != len(actual_bufs):
                return None
            for cbuf, abuf in zip(callee_bufs, actual_bufs):
                for cdim, adim in zip(cbuf.shape, abuf.shape):
                    if isinstance(cdim, sym.SymVar) and cdim not in var_map:
                        var_map[cdim] = adim
            if sym_args is not None:
                for cvar, expr in zip(callee.sym_params, sym_args.values):
                    if cvar not in var_map:
                        var_map[cvar] = expr

            buffer_map = {
                cbuf._id: abuf for cbuf, abuf in zip(callee_bufs, actual_bufs)
            }
            for inter in callee.intermediate_buffers():
                buffer_map[inter._id] = tir.Buffer(
                    f"{inter.name}_{len(stages)}",
                    [sym.simplify(sym.substitute(d, var_map)) for d in inter.shape],
                    inter.dtype,
                    scope=inter.scope,
                )
            for stage in callee.stages:
                stages.append(tir.substitute_stage(stage, buffer_map, var_map))

        merged = tir.PrimFunc(
            name=name if name.startswith("fused_") else f"fused_{name}",
            params=param_buffers + [output_buffer],
            stages=stages,
            num_outputs=1,
            attrs=attrs,
        )
        merged = tir.inline_producers(merged)
        needed = needed_sym_params(merged)
        if needed:
            merged = tir.PrimFunc(
                name=merged.name,
                params=merged.params,
                stages=merged.stages,
                num_outputs=1,
                sym_params=needed,
                attrs=merged.attrs,
            )
        merged.attrs["compute_pattern"] = tir.pattern_kind(merged)
        return _FusedPrim(merged, func)


class _CallRewriter(ExprMutator):
    """Replace calls to fusion-group functions with direct call_tir."""

    def __init__(self, mod: IRModule, fused: Dict[str, _FusedPrim], prim_gvars):
        super().__init__()
        self.mod = mod
        self.fused = fused
        self.prim_gvars = prim_gvars

    def visit_call(self, call: Call) -> Expr:
        visited = super().visit_call(call)
        if not isinstance(visited, Call):
            return visited
        call = visited
        if not isinstance(call.op, GlobalVar) or call.op.name_hint not in self.fused:
            return call
        bundle = self.fused[call.op.name_hint]
        sub_fn = bundle.sub_fn
        prim = bundle.prim

        # Map the subgraph function's symbolic variables to caller expressions.
        mapping: Dict[sym.SymVar, sym.ExprLike] = {}
        tensor_args: List[Expr] = []
        for param, arg in zip(sub_fn.params, call.args):
            ann = param.ann
            if isinstance(ann, TensorAnn):
                tensor_args.append(arg)
                arg_ann = arg.ann
                if (
                    ann.shape is not None
                    and isinstance(arg_ann, TensorAnn)
                    and arg_ann.shape is not None
                ):
                    for pdim, adim in zip(ann.shape, arg_ann.shape):
                        if isinstance(pdim, sym.SymVar) and pdim not in mapping:
                            mapping[pdim] = adim
            elif isinstance(ann, ShapeAnn) and ann.values is not None:
                if isinstance(arg, ShapeExpr):
                    for pval, aval in zip(ann.values, arg.values):
                        if isinstance(pval, sym.SymVar) and pval not in mapping:
                            mapping[pval] = aval

        out_shape = [
            sym.simplify(sym.substitute(d, mapping))
            for d in prim.output_buffers()[0].shape
        ]
        out_dtype = prim.output_buffers()[0].dtype
        sym_args = None
        if prim.sym_params:
            values = []
            for var in prim.sym_params:
                expr = mapping.get(var)
                if expr is None:
                    return call  # cannot thread the symbolic value: keep subgraph call
                values.append(sym.simplify(sym.PrimExpr.convert(expr)))
            sym_args = ShapeExpr(values)

        new_call = core_op.call_tir(
            self.prim_gvars[call.op.name_hint],
            tensor_args,
            TensorAnn(out_shape, out_dtype),
            sym_args,
        )
        new_call.ann = call.ann
        new_call.provenance = call.provenance
        return new_call


def _referenced_globals(mod: IRModule) -> set:
    """Names of globals referenced from any Relax function body."""
    used = set()

    def scan(expr: Expr) -> None:
        if isinstance(expr, GlobalVar):
            used.add(expr.name_hint)
            return
        if isinstance(expr, Call):
            scan(expr.op)
            for a in expr.args:
                scan(a)
        elif isinstance(expr, SeqExpr):
            for block in expr.blocks:
                for b in block.bindings:
                    scan(b.value)
            scan(expr.body)
        elif isinstance(expr, Function):
            scan(expr.body)
        else:
            from ..core.expr import Tuple, TupleGetItem, If

            if isinstance(expr, Tuple):
                for f in expr.fields:
                    scan(f)
            elif isinstance(expr, TupleGetItem):
                scan(expr.tuple_value)
            elif isinstance(expr, If):
                scan(expr.cond)
                scan(expr.true_branch)
                scan(expr.false_branch)

    for _, func in mod.relax_functions():
        scan(func)
    return used


def _remove_unused_tir(mod: IRModule) -> None:
    """Drop tensor programs no longer referenced by any Relax function."""
    used = _referenced_globals(mod)
    for name, _ in list(mod.tir_functions()):
        if name not in used:
            mod.remove(name)
