"""Low-level memory and DPS-call operators used after lowering.

``LowerCallTIR`` expands the cross-level call primitives into these
explicit operations (the Figure 5 semantics), exposing every allocation to
the memory planner (Alg. 3, step 3: "Lower call_tir and call_dps_library,
expanding them to explicit memory allocation and DPS calls"):

* ``memory.alloc_tensor(shape)`` — allocate via the runtime pool;
* ``memory.alloc_storage(size)`` — allocate a raw storage (planner output);
* ``memory.alloc_tensor_from_storage(storage, shape)`` — instantiate a
  tensor inside a planned storage;
* ``memory.kill(tensor)`` — end-of-life marker feeding pool recycling;
* ``vm.call_tir_dps`` / ``vm.call_lib_dps`` — destination-passing calls
  whose trailing tensor arguments are the outputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import sym
from ..core.annotations import ObjectAnn, TensorAnn
from ..core.expr import Call, Expr, ExternFunc, GlobalVar, Op, ShapeExpr, Tuple


def _alloc_tensor_deduce(call: Call):
    shape = call.args[0]
    if not isinstance(shape, ShapeExpr):
        raise TypeError("memory.alloc_tensor requires a ShapeExpr")
    return TensorAnn(shape.values, call.attrs["dtype"])


alloc_tensor_op = Op.register("memory.alloc_tensor", deduce=_alloc_tensor_deduce)


def alloc_tensor(shape: Sequence[sym.ExprLike], dtype: str) -> Call:
    return Call(alloc_tensor_op, [ShapeExpr(shape)], attrs={"dtype": dtype})


def _alloc_storage_deduce(call: Call):
    return ObjectAnn()


alloc_storage_op = Op.register("memory.alloc_storage", deduce=_alloc_storage_deduce)


def alloc_storage(size: sym.ExprLike) -> Call:
    """Allocate ``size`` bytes of raw storage."""
    return Call(alloc_storage_op, [ShapeExpr([size])])


def _alloc_from_storage_deduce(call: Call):
    shape = call.args[1]
    if not isinstance(shape, ShapeExpr):
        raise TypeError("memory.alloc_tensor_from_storage requires a ShapeExpr")
    return TensorAnn(shape.values, call.attrs["dtype"])


alloc_tensor_from_storage_op = Op.register(
    "memory.alloc_tensor_from_storage", deduce=_alloc_from_storage_deduce
)


def alloc_tensor_from_storage(
    storage: Expr, shape: Sequence[sym.ExprLike], dtype: str
) -> Call:
    return Call(
        alloc_tensor_from_storage_op, [storage, ShapeExpr(shape)], attrs={"dtype": dtype}
    )


kill_op = Op.register("memory.kill", deduce=lambda call: ObjectAnn())


def kill(tensor: Expr) -> Call:
    return Call(kill_op, [tensor])


def _dps_deduce(call: Call):
    return ObjectAnn()


call_tir_dps_op = Op.register("vm.call_tir_dps", deduce=_dps_deduce)
call_lib_dps_op = Op.register("vm.call_lib_dps", deduce=_dps_deduce)


def call_tir_dps(
    func: GlobalVar,
    inputs: Sequence[Expr],
    outputs: Sequence[Expr],
    sym_args: Optional[ShapeExpr] = None,
) -> Call:
    """In-place DPS call: ``func(*inputs, *outputs, *sym_args)``."""
    args: List[Expr] = [func, Tuple(list(inputs)), Tuple(list(outputs))]
    if sym_args is not None:
        args.append(sym_args)
    return Call(call_tir_dps_op, args)


def call_lib_dps(
    name: str, inputs: Sequence[Expr], outputs: Sequence[Expr]
) -> Call:
    return Call(
        call_lib_dps_op, [ExternFunc(name), Tuple(list(inputs)), Tuple(list(outputs))]
    )


def dps_parts(call: Call):
    """Destructure a vm.call_*_dps into (callee, inputs, outputs, sym_args)."""
    callee = call.args[0]
    inputs = call.args[1].fields
    outputs = call.args[2].fields
    sym_args = call.args[3] if len(call.args) > 3 else None
    return callee, inputs, outputs, sym_args
