"""Dead code elimination over dataflow blocks.

The paper's motivating example for dataflow blocks (§3.1): inside a
side-effect-free region one can "safely remove unused operators without
having to consider whether this could affect the visible behavior of the
program".  Bindings in *non*-dataflow blocks are conservatively kept —
they may be effectful (DPS calls, kills, allocations).
"""

from __future__ import annotations

from typing import Set

from ..core.expr import (
    Call,
    DataflowBlock,
    Expr,
    Function,
    If,
    MatchCast,
    SeqExpr,
    Tuple,
    TupleGetItem,
    Var,
)
from ..core.ir_module import IRModule
from .pass_infra import FunctionPass, PassContext, register_pass


def _collect_uses(expr: Expr, used: Set[int]) -> None:
    if isinstance(expr, Var):
        used.add(expr._id)
    elif isinstance(expr, Call):
        _collect_uses(expr.op, used)
        for arg in expr.args:
            _collect_uses(arg, used)
    elif isinstance(expr, Tuple):
        for f in expr.fields:
            _collect_uses(f, used)
    elif isinstance(expr, TupleGetItem):
        _collect_uses(expr.tuple_value, used)
    elif isinstance(expr, If):
        _collect_uses(expr.cond, used)
        _collect_uses(expr.true_branch, used)
        _collect_uses(expr.false_branch, used)
    elif isinstance(expr, SeqExpr):
        for block in expr.blocks:
            for binding in block.bindings:
                _collect_uses(binding.value, used)
        _collect_uses(expr.body, used)


@register_pass
class DeadCodeElimination(FunctionPass):
    """Remove dataflow bindings whose results are never used."""

    name = "DeadCodeElimination"
    opt_level = 1

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        # Iterate to a local fixed point: removing one dead binding can make
        # its producers dead too.  Bounded by the number of bindings.
        changed_any = False
        while True:
            used: Set[int] = set()
            _collect_uses(body.body, used)
            for block in body.blocks:
                for binding in block.bindings:
                    _collect_uses(binding.value, used)
            # A match_cast may introduce symbolic vars used by annotations;
            # keep any match_cast whose target has free symbolic variables.
            new_blocks = []
            changed = False
            for block in body.blocks:
                if not block.is_dataflow:
                    new_blocks.append(block)
                    continue
                kept = []
                for binding in block.bindings:
                    keep = binding.var._id in used
                    if not keep and isinstance(binding, MatchCast):
                        keep = bool(binding.target_ann.free_sym_vars())
                    if keep:
                        kept.append(binding)
                    else:
                        changed = True
                new_blocks.append(DataflowBlock(kept) if changed else block)
            if not changed:
                break
            changed_any = True
            body = SeqExpr(new_blocks, body.body)
            body.ann = func.body.ann

        if not changed_any:
            return func
        out = Function(func.params, body, func.ret_ann, func.attrs, func.name)
        out.ann = func.ann
        return out
