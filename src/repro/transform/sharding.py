"""Tensor-parallel sharding passes: ``PropagateSharding`` + ``LowerSharding``.

The pair turns one single-device module into one SPMD program that every
rank of a device mesh interprets with its own weight shards:

* :class:`PropagateSharding` is pure analysis.  It seeds
  :class:`~repro.dist.shard.ShardSpec` placements from a
  :class:`~repro.dist.shard.ShardingPlan` (matched to function params by
  name) and pushes them forward through every binding with per-operator
  rules, attaching the inferred spec to each variable's annotation as
  struct info (``ann.shard``).  Megatron-style column-parallel matmuls
  yield ``Split(last)`` activations; row-parallel matmuls over split
  activations yield *partial sums* (``Shard(partial)``).

* :class:`LowerSharding` consumes the annotations and rebuilds every
  function as the per-shard program: split parameter dims narrow to
  ``dim // world``, reshape targets are rewritten to their per-shard
  literals, and each partial-sum matmul becomes the minimal collective
  sequence ``matmul(out_dtype=f64) -> ccl.all_reduce -> astype`` — the
  f64 partials cross the wire unrounded and the all-reduce combines them
  in fixed rank order, so the sharded result rounds to *bitwise* the
  same low-precision value as the unsharded computation.  For a Llama
  block this inserts exactly two all-reduces: one after the attention
  output projection and one after the MLP down projection.

Both passes are identity (the *same* module object) at ``world == 1``,
which is what makes a ``tp=1`` sharded build byte-identical to an
unsharded one.
"""

from __future__ import annotations

import copy

from typing import Dict, List, Optional, Sequence, Tuple

from .. import ops, sym
from ..core.annotations import Annotation, TensorAnn
from ..core.expr import (
    Call,
    Constant,
    DataflowBlock,
    DataflowVar,
    Expr,
    Function,
    MatchCast,
    Op,
    PrimValue,
    SeqExpr,
    ShapeExpr,
    Tuple as TupleExpr,
    TupleGetItem,
    Var,
    VarBinding,
)
from ..core.block_builder import BlockBuilder
from ..core.ir_module import IRModule
from ..dist.shard import Replicated, ShardSpec, ShardingPlan
from .pass_infra import Pass, PassContext, register_pass


class ShardingError(ValueError):
    """A sharding plan cannot be propagated or lowered through a module."""


_PARTIAL = ShardSpec(partial=True)

#: Elementwise ops that preserve their input's placement unchanged.
_ELEMENTWISE_UNARY = frozenset({
    "abs", "astype", "erf", "exp", "gelu", "log", "negative", "relu",
    "rsqrt", "sigmoid", "silu", "sqrt", "tanh",
})

_ELEMENTWISE_BINARY = frozenset({
    "add", "divide", "maximum", "minimum", "multiply", "power", "subtract",
})

#: Ops computing independently per KV/attention head: a head shard
#: (``Split(2)`` on every tensor operand) passes straight through.
_PER_HEAD = frozenset({
    "attention", "paged_attention", "paged_prefill", "paged_verify",
    "paged_cross_attention",
})

#: Ops that normalize (or reduce) over the feature axis and therefore
#: need their tensor input whole on every rank.
_NEEDS_REPLICATED = frozenset({
    "rms_norm", "layer_norm", "softmax", "causal_mask",
    "sum", "mean", "max", "min",
})

_CREATION = frozenset({"arange", "zeros", "ones", "full"})


def _static_int(dim) -> Optional[int]:
    if sym.is_static(dim):
        return sym.as_static_int(sym.simplify(dim))
    return None


def _spec_of(expr: Expr, env: Dict[int, ShardSpec]) -> ShardSpec:
    """Placement of an operand: tracked vars from the env, everything
    else (constants, shapes, prim values) replicated.  Partial values
    read as replicated downstream — lowering resolves them with an
    all-reduce at the defining binding, before any consumer runs."""
    if isinstance(expr, Var):
        spec = env.get(expr._id, ShardSpec())
        return ShardSpec() if spec.partial else spec
    return ShardSpec()


def _tensor_ann(expr: Expr) -> Optional[TensorAnn]:
    ann = getattr(expr, "ann", None)
    return ann if isinstance(ann, TensorAnn) else None


# ---------------------------------------------------------------------------
# Reshape regrouping
# ---------------------------------------------------------------------------


def _reshape_regroup(in_shape, out_dims, in_axis: int, world: int):
    """Map a split axis through a reshape.

    ``in_shape`` / ``out_dims`` are the ORIGINAL (unsharded) dims.
    Returns ``(out_axis, new_out_dims)`` — the output axis that carries
    the shard and the target dims with that axis narrowed ``// world``.

    Matching dims are peeled from both ends (the common prefix/suffix of
    provably-equal dims); whatever remains is one regrouped span, e.g.
    ``(b, s, h, d) <-> (b, s, h*d)``.  The split axis must lead its span
    — only then is the per-shard reshape a contiguous slice of the
    global reshape (an inner split would interleave ranks' elements).
    """
    n_in, n_out = len(in_shape), len(out_dims)
    prefix = 0
    while (prefix < min(n_in, n_out) - 1
           and sym.prove_equal(in_shape[prefix], out_dims[prefix])):
        prefix += 1
    suffix = 0
    while (suffix < min(n_in, n_out) - prefix - 1
           and sym.prove_equal(in_shape[n_in - 1 - suffix],
                               out_dims[n_out - 1 - suffix])):
        suffix += 1

    def narrowed(dims, axis):
        size = _static_int(dims[axis])
        if size is None or size % world:
            raise ShardingError(
                f"reshape: cannot narrow dim {dims[axis]} by world {world}"
            )
        new = list(dims)
        new[axis] = size // world
        return axis, tuple(new)

    if in_axis < prefix:  # split axis maps one-to-one
        return narrowed(out_dims, in_axis)
    if in_axis >= n_in - suffix:
        return narrowed(out_dims, n_out - (n_in - in_axis))
    if in_axis != prefix:
        raise ShardingError(
            "reshape: split axis must lead its regrouped span "
            f"(axis {in_axis}, span starts at {prefix})"
        )
    for axis in range(prefix, n_out - suffix):
        size = _static_int(out_dims[axis])
        if size is not None and size % world == 0:
            return narrowed(out_dims, axis)
    raise ShardingError(
        f"reshape: no target dim in {out_dims[prefix:n_out - suffix]} "
        f"is divisible by world {world}"
    )


# ---------------------------------------------------------------------------
# Per-op propagation rules
# ---------------------------------------------------------------------------


def _matmul_spec(call: Call, env, world: int) -> ShardSpec:
    a, b = call.args[0], call.args[1]
    sa, sb = _spec_of(a, env), _spec_of(b, env)
    a_ann, b_ann = _tensor_ann(a), _tensor_ann(b)
    if a_ann is None or b_ann is None:
        raise ShardingError("matmul: operands lack tensor annotations")
    a_nd, b_nd = a_ann.ndim, b_ann.ndim
    out_nd = max(a_nd, b_nd)
    transpose_b = bool(call.attrs.get("transpose_b"))
    a_contract = a_nd - 1
    b_contract = (b_nd - 1) if transpose_b else (b_nd - 2 if b_nd > 1 else 0)
    b_feature = (b_nd - 2 if b_nd > 1 else 0) if transpose_b else b_nd - 1

    if sa.is_replicated and sb.is_replicated:
        return ShardSpec()
    if sa.is_replicated and sb.dim == b_feature:
        return ShardSpec(dim=out_nd - 1)  # column parallel
    if sa.dim == a_contract and sb.dim == b_contract:
        return _PARTIAL  # row parallel: per-rank partial sums
    if sa.dim is not None and sa.dim < a_contract and sb.is_replicated:
        return ShardSpec(dim=sa.dim + (out_nd - a_nd))  # sharded batch dim
    raise ShardingError(
        f"matmul: unsupported operand placement {sa} x {sb}"
    )


def _elementwise_binary_spec(call: Call, env) -> ShardSpec:
    a, b = call.args[0], call.args[1]
    sa, sb = _spec_of(a, env), _spec_of(b, env)
    if sa.is_replicated and sb.is_replicated:
        return ShardSpec()
    a_ann, b_ann = _tensor_ann(a), _tensor_ann(b)
    a_nd = a_ann.ndim if a_ann is not None else 0
    b_nd = b_ann.ndim if b_ann is not None else 0
    out_nd = max(a_nd, b_nd)

    def from_right(spec, nd):
        return None if spec.dim is None else nd - 1 - spec.dim

    ra, rb = from_right(sa, a_nd), from_right(sb, b_nd)
    if ra is not None and rb is not None:
        if ra != rb:
            raise ShardingError(
                f"{call.op.name}: operands split on different axes "
                f"({sa} vs {sb})"
            )
        return ShardSpec(dim=out_nd - 1 - ra)
    split_r, other_ann, other_nd = (
        (ra, b_ann, b_nd) if ra is not None else (rb, a_ann, a_nd)
    )
    # The replicated side must broadcast along the split axis: either its
    # rank doesn't reach it, or its dim there is literally 1.  A full-size
    # replicated operand would mix whole tensors with shards.
    if other_nd > split_r:
        dim = other_ann.shape[other_nd - 1 - split_r]
        if _static_int(dim) != 1:
            raise ShardingError(
                f"{call.op.name}: replicated operand spans the split axis "
                f"(dim {dim}); shard or broadcast it instead"
            )
    return ShardSpec(dim=out_nd - 1 - split_r)


def _infer_call_spec(call: Call, env: Dict[int, ShardSpec],
                     world: int) -> ShardSpec:
    """Forward placement rule for one operator call."""
    name = call.op.name
    arg_specs = [_spec_of(a, env) for a in call.args]

    if name == "matmul":
        return _matmul_spec(call, env, world)
    if name in _ELEMENTWISE_UNARY:
        return arg_specs[0]
    if name in _ELEMENTWISE_BINARY:
        return _elementwise_binary_spec(call, env)
    if name == "reshape":
        spec = arg_specs[0]
        if spec.is_replicated:
            return spec
        ann = _tensor_ann(call.args[0])
        target = call.args[1]
        if not isinstance(target, ShapeExpr):
            raise ShardingError("reshape: split input needs a literal shape")
        out_axis, _ = _reshape_regroup(
            ann.shape, target.values, spec.dim, world
        )
        return ShardSpec(dim=out_axis)
    if name == "rope":
        for extra in arg_specs[1:]:
            if not extra.is_replicated:
                raise ShardingError("rope: offsets must be replicated")
        return arg_specs[0]
    if name == "concat":
        specs = arg_specs
        first = specs[0]
        if any(s != first for s in specs[1:]):
            raise ShardingError("concat: operands differ in placement")
        if first.is_split and first.dim == int(call.attrs.get("axis", 0)):
            raise ShardingError("concat: cannot concatenate along the "
                                "split axis")
        return first
    if name in _PER_HEAD:
        tensor_specs = [
            s for a, s in zip(call.args, arg_specs)
            if (ann := _tensor_ann(a)) is not None and ann.ndim >= 3
        ]
        if all(s.is_replicated for s in tensor_specs):
            return ShardSpec()
        if all(s.dim == 2 for s in tensor_specs):
            return ShardSpec(dim=2)  # head-sharded
        raise ShardingError(
            f"{name}: q/kv operands must all be head-sharded (Split(2)) "
            f"or all replicated, got {tensor_specs}"
        )
    if name in _NEEDS_REPLICATED:
        if not all(s.is_replicated for s in arg_specs):
            raise ShardingError(f"{name}: requires replicated inputs")
        return ShardSpec()
    if name == "take":
        x_spec, idx_spec = arg_specs[0], arg_specs[1]
        if not idx_spec.is_replicated:
            raise ShardingError("take: indices must be replicated")
        if x_spec.is_split and x_spec.dim == int(call.attrs.get("axis", 0)):
            raise ShardingError("take: cannot gather along the split axis")
        return x_spec
    if name in _CREATION:
        return ShardSpec()
    if name.startswith("ccl."):
        if name == "ccl.all_reduce":
            return ShardSpec()
        raise ShardingError(f"{name}: collectives are inserted by "
                            "LowerSharding, not user programs")
    if all(s.is_replicated for s in arg_specs):
        return ShardSpec()
    raise ShardingError(
        f"no sharding rule for operator {name!r} with split inputs"
    )


# ---------------------------------------------------------------------------
# PropagateSharding
# ---------------------------------------------------------------------------


@register_pass
class PropagateSharding(Pass):
    """Seed param placements from a plan and propagate them forward,
    annotating every variable's annotation with its ShardSpec."""

    name = "PropagateSharding"
    opt_level = 0
    required = True

    def __init__(self, plan: ShardingPlan):
        self.plan = plan

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        if self.plan.world == 1:
            return mod  # identity, same object: tp=1 stays byte-identical
        for _name, func in mod.relax_functions():
            self._annotate_function(func)
        return mod

    def _annotate_function(self, func: Function) -> None:
        world = self.plan.world
        env: Dict[int, ShardSpec] = {}
        # Alias bindings (emit_output) can share the source var's ann
        # object; give each var a private ann before attaching its spec
        # so annotating an alias never clobbers its source.
        annotated: set = set()

        def attach(var, spec):
            if var.ann is None:
                return
            if id(var.ann) in annotated:
                var.ann = copy.copy(var.ann)
            var.ann.shard = spec
            annotated.add(id(var.ann))

        for param in func.params:
            spec = self.plan.spec_for(param.name_hint)
            if spec.is_split:
                ann = _tensor_ann(param)
                if ann is None or ann.shape is None:
                    raise ShardingError(
                        f"cannot shard param {param.name_hint}: no shape"
                    )
                size = _static_int(ann.shape[spec.dim])
                if size is None or size % world:
                    raise ShardingError(
                        f"param {param.name_hint}: dim {spec.dim} "
                        f"({ann.shape[spec.dim]}) not divisible by {world}"
                    )
            env[param._id] = spec
            attach(param, spec)
        seq = func.body
        if not isinstance(seq, SeqExpr):
            raise ShardingError("sharding expects SeqExpr function bodies")
        for block in seq.blocks:
            for binding in block.bindings:
                if isinstance(binding, MatchCast):
                    raise ShardingError(
                        "sharding does not support match_cast bindings"
                    )
                spec = self._infer_binding(binding.value, env, world)
                env[binding.var._id] = (
                    spec if isinstance(spec, ShardSpec) else ShardSpec()
                )
                attach(binding.var, spec)

    def _infer_binding(self, value: Expr, env, world):
        if isinstance(value, Call) and isinstance(value.op, Op):
            return _infer_call_spec(value, env, world)
        if isinstance(value, TupleExpr):
            return tuple(_spec_of(f, env) for f in value.fields)
        if isinstance(value, Var):
            # An alias observes the defining binding's *resolved* value:
            # partial sums are reduced where they are produced, so the
            # alias itself is replicated.
            spec = env.get(value._id, ShardSpec())
            if isinstance(spec, ShardSpec) and spec.partial:
                return ShardSpec()
            return spec
        if isinstance(value, TupleGetItem):
            base = value.tuple_value
            if isinstance(base, Var):
                ann = getattr(base, "ann", None)
                shard = getattr(ann, "shard", None)
                if isinstance(shard, tuple):
                    return shard[value.index]
            return ShardSpec()
        if isinstance(value, (Constant, ShapeExpr, PrimValue)):
            return ShardSpec()
        if isinstance(value, Call):
            raise ShardingError(
                "sharding supports operator calls only, not "
                f"{type(value.op).__name__} calls"
            )
        raise ShardingError(
            f"no sharding rule for bound {type(value).__name__}"
        )


# ---------------------------------------------------------------------------
# LowerSharding
# ---------------------------------------------------------------------------


@register_pass
class LowerSharding(Pass):
    """Rebuild every function as its per-shard SPMD program.

    Requires :class:`PropagateSharding` annotations.  Narrows split
    param dims, rewrites reshape literals, and expands each partial-sum
    matmul into ``matmul(out_dtype=f64) -> ccl.all_reduce -> astype``.
    """

    name = "LowerSharding"
    opt_level = 0
    required = True

    def __init__(self, plan: ShardingPlan):
        self.plan = plan

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        if self.plan.world == 1:
            return mod  # identity, same object: tp=1 stays byte-identical
        bb = BlockBuilder()
        for name, func in mod.relax_functions():
            self._lower_function(bb, name, func)
        out = bb.get()
        for name, func in mod.functions():
            if name not in out:
                out.add(name, func)
        return out

    # -- helpers ----------------------------------------------------------------

    def _shard_of(self, expr: Expr) -> ShardSpec:
        shard = getattr(getattr(expr, "ann", None), "shard", None)
        if shard is None:
            raise ShardingError(
                "LowerSharding needs PropagateSharding annotations; "
                f"missing on {getattr(expr, 'name_hint', expr)}"
            )
        return shard if isinstance(shard, ShardSpec) else ShardSpec()

    def _narrow_ann(self, ann: TensorAnn, spec: ShardSpec) -> TensorAnn:
        world = self.plan.world
        size = _static_int(ann.shape[spec.dim])
        shape = list(ann.shape)
        shape[spec.dim] = size // world
        return TensorAnn(tuple(shape), ann.dtype)

    def _lower_function(self, bb: BlockBuilder, name: str,
                        func: Function) -> None:
        world = self.plan.world
        env: Dict[int, Var] = {}
        params: List[Var] = []
        for param in func.params:
            spec = self._shard_of(param)
            if spec.is_split:
                new = Var(param.name_hint,
                          self._narrow_ann(param.ann, spec))
                new.ann.shard = spec
            else:
                new = param  # same Var: annotations and SymVars carry over
            env[param._id] = new
            params.append(new)

        seq = func.body
        blocks = [b for b in seq.blocks if b.bindings]
        if len(blocks) != 1 or not isinstance(blocks[0], DataflowBlock):
            raise ShardingError(
                f"{name}: sharding lowers single-dataflow-block functions"
            )
        with bb.function(name, params, attrs=func.attrs):
            with bb.dataflow():
                for binding in blocks[0].bindings:
                    self._lower_binding(bb, binding, env, world)
            if not isinstance(seq.body, Var):
                raise ShardingError(f"{name}: function result must be a var")
            bb.emit_func_output(env[seq.body._id])

    def _lower_binding(self, bb: BlockBuilder, binding: VarBinding,
                       env: Dict[int, Var], world: int) -> None:
        old = binding.var
        emit = bb.emit if isinstance(old, DataflowVar) else bb.emit_output
        spec = getattr(old.ann, "shard", None) if old.ann is not None else None
        value = binding.value

        if isinstance(spec, ShardSpec) and spec.partial:
            # Row-parallel matmul: keep per-rank partials unrounded (f64),
            # combine them in rank order, round back exactly once.
            out_dtype = old.ann.dtype
            a = self._rewrite(value.args[0], env)
            b = self._rewrite(value.args[1], env)
            partial = bb.emit(ops.matmul(
                a, b, out_dtype="f64",
                transpose_b=bool(value.attrs.get("transpose_b")),
            ))
            reduced = bb.emit(ops.ccl.all_reduce(partial, world))
            new_var = emit(ops.astype(reduced, out_dtype))
            new_var.ann.shard = Replicated()
            env[old._id] = new_var
            return

        if isinstance(value, Call) and isinstance(value.op, Op):
            new_expr = self._lower_call(value, env, spec, world)
        elif isinstance(value, TupleExpr):
            new_expr = TupleExpr([self._rewrite(f, env)
                                  for f in value.fields])
        elif isinstance(value, Var):
            new_expr = self._rewrite(value, env)
        elif isinstance(value, TupleGetItem):
            new_expr = TupleGetItem(
                self._rewrite(value.tuple_value, env), value.index
            )
        else:
            new_expr = value
        new_var = emit(new_expr)
        if new_var.ann is not None and spec is not None:
            new_var.ann.shard = spec
        env[old._id] = new_var

    def _lower_call(self, call: Call, env, spec, world: int) -> Call:
        new_args = [self._rewrite(a, env) for a in call.args]
        if (call.op.name == "reshape"
                and isinstance(spec, ShardSpec) and spec.is_split):
            in_spec = self._shard_of(call.args[0])
            in_ann = _tensor_ann(call.args[0])
            target = call.args[1]
            _axis, new_dims = _reshape_regroup(
                in_ann.shape, target.values, in_spec.dim, world
            )
            new_args[1] = ShapeExpr(new_dims)
        return Call(call.op, new_args, attrs=dict(call.attrs),
                    sinfo_args=call.sinfo_args)

    def _rewrite(self, expr: Expr, env: Dict[int, Var]) -> Expr:
        if isinstance(expr, Var):
            try:
                return env[expr._id]
            except KeyError:
                raise ShardingError(
                    f"unbound variable {expr.name_hint} during lowering"
                ) from None
        return expr
