"""AnnotatePatternKind — the analysis feedback pass (§4 "Analysis feedback",
Algorithm 1).

Classifies every tensor program in the module by inspecting its loops and
buffer access indices, and records the result as the ``compute_pattern``
function attribute.  FuseOps consumes these attributes instead of manual
per-operator annotations — the paper's point being that cross-level
analysis replaces "heavy and inflexible manual operator annotations".
"""

from __future__ import annotations

from .. import tir
from ..core.ir_module import IRModule
from .pass_infra import Pass, PassContext, register_pass

PATTERN_ATTR = "compute_pattern"


@register_pass
class AnnotatePatternKind(Pass):
    name = "AnnotatePatternKind"
    opt_level = 1

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        for _, func in mod.tir_functions():
            kind = tir.pattern_kind(func)
            func.attrs[PATTERN_ATTR] = kind
        return mod


def pattern_of(mod: IRModule, gvar_name: str) -> tir.PatternKind:
    """Pattern kind of a tensor program, computing it on demand."""
    func = mod[gvar_name]
    kind = func.attrs.get(PATTERN_ATTR)
    if kind is None:
        kind = tir.pattern_kind(func)
        func.attrs[PATTERN_ATTR] = kind
    return kind
