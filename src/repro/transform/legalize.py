"""LegalizeOps: lower every high-level operator call to ``call_tir``.

The pipeline step of §4.7: "we go through the whole program, generate
tensor programs for all high-level operator calls, and lower the operator
calls to call_tir of corresponding tensor programs."  Data-dependent
operators without tensor programs (unique, nonzero) become allocating
extern calls served by VM builtins.

When a generated tensor program has symbolic variables not inferable from
its buffer shapes, the call site passes them explicitly via the trailing
ShapeExpr — the Fig. 8 extra-symbolic-argument pattern, applied
mechanically.
"""

from __future__ import annotations

from ..core.expr import Call, Expr, ExternFunc, Op, ShapeExpr
from ..core.ir_module import IRModule
from ..core import op as core_op
from ..core.deduction import rededuce_function
from ..core.visitor import ExprMutator
from ..ops.registry import finalize_prim_func
from .pass_infra import FunctionPass, PassContext, register_pass


class _Legalizer(ExprMutator):
    def __init__(self, mod: IRModule):
        super().__init__()
        self.mod = mod

    def visit_call(self, call: Call) -> Expr:
        visited = super().visit_call(call)
        if not isinstance(visited, Call):
            return visited
        call = visited
        op = call.op
        if not isinstance(op, Op):
            return call
        if op is core_op.call_tir_op or op is core_op.call_dps_library_op:
            return call
        if op.name.startswith("memory.") or op.name.startswith("vm."):
            return call
        if op.name == "shape_of":
            arg_ann = call.args[0].ann
            from ..core.annotations import TensorAnn

            if isinstance(arg_ann, TensorAnn) and arg_ann.shape is not None:
                # Static rewrite: the symbolic shape is already known.
                out = ShapeExpr(arg_ann.shape)
                return out
        if op.legalize is None:
            extern = getattr(op, "extern_name", None)
            if extern is not None:
                out = Call(ExternFunc(extern), list(call.args),
                           sinfo_args=(call.ann,) if call.ann is not None else ())
                out.ann = call.ann
                out.provenance = call.provenance or (op.name,)
                return out
            return call
        legalized = op.legalize(call)
        if legalized is None:
            return call
        prim_func = finalize_prim_func(legalized.prim_func)
        prim_func.attrs.setdefault("source_op", op.name)
        gvar = self.mod.add_unique(prim_func.name, prim_func)
        sym_args = None
        if prim_func.sym_params:
            sym_args = ShapeExpr(list(prim_func.sym_params))
        out_ann = getattr(legalized, "out_anns", None) or legalized.out_ann
        new_call = core_op.call_tir(gvar, legalized.args, out_ann, sym_args)
        new_call.ann = call.ann
        new_call.provenance = call.provenance or (op.name,)
        return new_call


@register_pass
class LegalizeOps(FunctionPass):
    name = "LegalizeOps"
    opt_level = 0
    required = True

    def transform_function(self, name, func, mod: IRModule, ctx: PassContext):
        legalizer = _Legalizer(mod)
        new_func = legalizer.visit_function(func)
        if new_func is not func:
            def lookup(gvar):
                if gvar.name_hint in mod:
                    target = mod[gvar.name_hint]
                    from ..core.expr import Function

                    if isinstance(target, Function):
                        return target.signature_ann()
                return None

            rededuce_function(new_func, lookup)
        return new_func
