"""RefineShapes — backward constraint propagation (optional extension).

The paper's related-work section notes that "Relax could still apply a
similar constraint-solving approach [to Axon's], despite its additional
compile time costs."  This pass is that approach in its sound core: a
backward dataflow over *equality* constraints.

When a value's annotation is known downstream — typically because a
``match_cast`` asserted it — and the producing operator provably preserves
shape (elementwise unary ops, normalizations, softmax), the finer
annotation propagates backwards onto the producer's operands.  Only
intermediate variables are refined (function parameters keep their public
signature), and only from coarse to provably-compatible finer annotations,
so the pass cannot reject programs the forward deduction accepted.

Run it after construction (or between passes) to recover precision that
forward-only deduction gave up at data-dependent operators.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.annotations import TensorAnn
from ..core.expr import Call, Function, MatchCast, Op, SeqExpr, Var
from ..core.ir_module import IRModule
from .pass_infra import FunctionPass, PassContext, register_pass

#: Operators whose (single tensor) input provably has the output's shape.
SHAPE_PRESERVING_UNARY = {
    "relu", "exp", "log", "sqrt", "rsqrt", "tanh", "erf", "sigmoid", "silu",
    "gelu", "negative", "abs", "astype", "softmax", "rms_norm", "layer_norm",
}


def _finer(current: Optional[TensorAnn], candidate: TensorAnn) -> bool:
    """Is ``candidate`` strictly more informative and compatible?"""
    if not isinstance(candidate, TensorAnn) or candidate.shape is None:
        return False
    if not isinstance(current, TensorAnn):
        return False
    if current.shape is not None:
        return False  # already fine
    return current.possibly_matches(candidate)


@register_pass
class RefineShapes(FunctionPass):
    name = "RefineShapes"
    opt_level = 1

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        bindings = [b for block in body.blocks for b in block.bindings]
        producer_of: Dict[int, object] = {b.var._id: b for b in bindings}
        binding_index = {b.var._id: i for i, b in enumerate(bindings)}
        param_ids = {p._id for p in func.params}

        # Symbolic-variable scoping: a constraint may only flow to program
        # points *after* its variables' introduction (signature: -1;
        # match_cast: its binding index).  Otherwise the refined annotation
        # would reference a value with no runtime source yet — exactly the
        # §3.2 scoping rule the verifier enforces.
        intro_index: Dict = {}
        for param in func.params:
            if param.ann is not None:
                for var in param.ann.free_sym_vars():
                    intro_index.setdefault(var.key(), -1)
        for i, binding in enumerate(bindings):
            if isinstance(binding, MatchCast):
                for var in binding.target_ann.free_sym_vars():
                    intro_index.setdefault(var.key(), i)

        def in_scope_at(ann: TensorAnn, index: int) -> bool:
            return all(
                intro_index.get(var.key(), 1 << 60) <= index
                for var in ann.free_sym_vars()
            )

        changed = True
        rounds = 0
        while changed and rounds < len(bindings) + 1:
            changed = False
            rounds += 1
            for binding in reversed(bindings):
                target_ann = binding.var.ann
                value = binding.value
                # match_cast: the asserted annotation constrains its operand.
                if isinstance(binding, MatchCast):
                    source = value
                    constraint = binding.target_ann
                elif (
                    isinstance(value, Call)
                    and isinstance(value.op, Op)
                    and value.op.name in SHAPE_PRESERVING_UNARY
                    and value.args
                ):
                    source = value.args[0]
                    constraint = target_ann
                else:
                    continue
                if not isinstance(source, Var) or source._id in param_ids:
                    continue
                if not isinstance(constraint, TensorAnn) or constraint.shape is None:
                    continue
                src_index = binding_index.get(source._id)
                if src_index is None or not in_scope_at(constraint, src_index - 1):
                    continue
                src_ann = source.ann
                if _finer(src_ann, constraint):
                    dtype = (
                        src_ann.dtype if isinstance(src_ann, TensorAnn)
                        and src_ann.dtype is not None else constraint.dtype
                    )
                    source.ann = TensorAnn(constraint.shape, dtype)
                    changed = True
                    # The producer binding's value annotation follows too.
                    producer = producer_of.get(source._id)
                    if producer is not None and producer.value.ann is not None:
                        if _finer(producer.value.ann, source.ann):
                            producer.value.ann = source.ann
        return func
