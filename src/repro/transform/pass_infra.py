"""Pass infrastructure: module-to-module transformations with contexts.

Relax uses a fixed-order pipeline *without* fixed-point iteration (§4.7);
the infrastructure here is correspondingly simple: a :class:`Pass` maps an
IRModule to a new IRModule under a :class:`PassContext` carrying pipeline
options (target device, symbolic variable bounds, feature toggles), and
:class:`Sequential` composes passes, optionally verifying well-formedness
between steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .. import sym
from ..core.ir_module import IRModule
from ..core.well_formed import well_formed
from ..runtime.device import Device, TEST_DEVICE
from ..runtime.library import REGISTRY, LibraryRegistry


@dataclass
class PassContext:
    """Options threaded through the pipeline."""

    device: Device = TEST_DEVICE
    registry: LibraryRegistry = field(default_factory=lambda: REGISTRY)
    #: Declared upper bounds for symbolic variables by *name* (e.g. the LLM
    #: context length), enabling static memory planning (§4.3).
    sym_var_upper_bounds: Dict[str, int] = field(default_factory=dict)
    enable_library_dispatch: bool = True
    enable_fusion: bool = True
    enable_memory_planning: bool = True
    enable_cuda_graph: bool = True
    enable_autotuning: bool = False  # Ansor-style tuning for opaque kernels
    verify_each_pass: bool = False

    def bounds_for(self, variables) -> sym.VarBounds:
        """Interval table for the given symbolic variables (matched by name)."""
        out: sym.VarBounds = {}
        for var in variables:
            bound = self.sym_var_upper_bounds.get(var.name)
            if bound is not None:
                out[var] = sym.Interval(0, int(bound))
        return out


class Pass:
    """A module-to-module transformation."""

    name = "pass"

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        raise NotImplementedError

    def __call__(self, mod: IRModule, ctx: Optional[PassContext] = None) -> IRModule:
        ctx = ctx or PassContext()
        out = self.run(mod, ctx)
        if ctx.verify_each_pass:
            well_formed(out, check_sym_scope=False)
        return out


class FunctionPass(Pass):
    """Applies a per-function rewrite to every Relax function."""

    def transform_function(self, name, func, mod: IRModule, ctx: PassContext):
        raise NotImplementedError

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        out = mod.copy()
        for name, func in list(mod.relax_functions()):
            new_func = self.transform_function(name, func, out, ctx)
            if new_func is not None and new_func is not func:
                out.add(name, new_func)
        return out


class Sequential(Pass):
    """Runs passes in order (the fixed-order pipeline of §4.7)."""

    name = "sequential"

    def __init__(self, passes: List[Pass]):
        self.passes = list(passes)

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        for p in self.passes:
            mod = p(mod, ctx)
        return mod


class LambdaPass(Pass):
    """Wrap a plain function as a pass (testing convenience)."""

    def __init__(self, fn: Callable[[IRModule, PassContext], IRModule], name="lambda"):
        self.fn = fn
        self.name = name

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        return self.fn(mod, ctx)
