"""Pass infrastructure: module-to-module transformations with contexts.

Relax uses a fixed-order pipeline *without* fixed-point iteration (§4.7),
but the ablations (Fig. 17, Table 2) depend on toggling and *observing*
individual stages.  The infrastructure here therefore mirrors TVM's
``PassContext`` / ``PassInstrument`` shape:

* every :class:`Pass` declares metadata — ``name``, ``opt_level``,
  ``required`` and optionally ``opt_flag`` (the :class:`PassContext`
  boolean that gates it) — and registers itself in a module-level
  registry so pipelines can be built and overridden *by name*;
* :class:`PassContext` is a scoped context manager
  (``with PassContext(...) as ctx: ...`` / ``PassContext.current()``)
  carrying a list of :class:`~repro.transform.instrument.PassInstrument`
  hooks with ``enter_pass_ctx / should_run / run_before_pass /
  run_after_pass / exit_pass_ctx`` lifecycle methods;
* every pass execution (or skip) is recorded in the context's
  :class:`PipelineReport`, which ``optimize()`` / ``build()`` can return
  and the benchmark harness serializes alongside results.

:class:`Sequential` composes passes; gating (``enable_*`` flags,
``opt_level``, instrument vetoes) happens uniformly in
:meth:`Pass.__call__`, not ad hoc inside pass bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from .. import sym
from ..core.ir_module import IRModule
from ..runtime.device import Device, TEST_DEVICE
from ..runtime.library import REGISTRY, LibraryRegistry


# ---------------------------------------------------------------------------
# Pipeline report
# ---------------------------------------------------------------------------


@dataclass
class PassRecord:
    """One pipeline step: an executed or skipped pass."""

    name: str
    index: int
    ran: bool = True
    #: Why the pass did not run: ``"flag:<enable_*>"``, ``"opt_level"``,
    #: or ``"instrument:<name>"``.
    skipped_by: Optional[str] = None
    #: Wall time, filled by the :class:`~repro.transform.instrument.Timing`
    #: instrument (``None`` when no Timing instrument is active).
    duration_s: Optional[float] = None
    #: Free-form per-pass measurements contributed by instruments
    #: (e.g. IRStats' before/after node counts).
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "index": self.index,
                               "ran": self.ran}
        if self.skipped_by is not None:
            out["skipped_by"] = self.skipped_by
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        return out


@dataclass
class PipelineReport:
    """Ordered record of every pass the pipeline executed or skipped."""

    records: List[PassRecord] = field(default_factory=list)

    def new_record(self, name: str) -> PassRecord:
        record = PassRecord(name=name, index=len(self.records))
        self.records.append(record)
        return record

    # -- views --------------------------------------------------------------

    @property
    def executed(self) -> List[PassRecord]:
        return [r for r in self.records if r.ran]

    @property
    def skipped(self) -> List[PassRecord]:
        return [r for r in self.records if not r.ran]

    def executed_names(self) -> List[str]:
        return [r.name for r in self.executed]

    def timings(self) -> Dict[str, float]:
        """Accumulated wall time per pass name (Timing instrument data)."""
        out: Dict[str, float] = {}
        for r in self.executed:
            if r.duration_s is not None:
                out[r.name] = out.get(r.name, 0.0) + r.duration_s
        return out

    @property
    def total_duration_s(self) -> float:
        return sum(r.duration_s or 0.0 for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passes": [r.to_dict() for r in self.records],
            "total_duration_s": self.total_duration_s,
        }

    def format(self) -> str:
        """Human-readable per-pass table."""
        lines = [f"{'#':>3}  {'pass':<24} {'time':>10}  notes"]
        for r in self.records:
            if r.ran:
                time_txt = (f"{r.duration_s * 1e3:.3f} ms"
                            if r.duration_s is not None else "—")
                note = ", ".join(
                    f"{k}={v}" for k, v in r.metrics.items()
                    if v is not None and not isinstance(v, dict)
                )
            else:
                time_txt = "skipped"
                note = r.skipped_by or ""
            lines.append(f"{r.index:>3}  {r.name:<24} {time_txt:>10}  {note}")
        lines.append(f"     {'total':<24} "
                     f"{self.total_duration_s * 1e3:>7.3f} ms")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# PassContext
# ---------------------------------------------------------------------------


@dataclass
class PassContext:
    """Options threaded through the pipeline, plus instrumentation state.

    Usable two ways: passed explicitly (``some_pass(mod, ctx)``) or scoped
    (``with PassContext(...) as ctx: build(mod)``) — inside a ``with``
    block, :meth:`PassContext.current` (which every pass consults when no
    context is given) returns the innermost active context.
    """

    device: Device = TEST_DEVICE
    registry: LibraryRegistry = field(default_factory=lambda: REGISTRY)
    #: Declared upper bounds for symbolic variables by *name* (e.g. the LLM
    #: context length), enabling static memory planning (§4.3).
    sym_var_upper_bounds: Dict[str, int] = field(default_factory=dict)
    enable_library_dispatch: bool = True
    enable_fusion: bool = True
    enable_memory_planning: bool = True
    enable_cuda_graph: bool = True
    enable_autotuning: bool = False  # Ansor-style tuning for opaque kernels
    #: Passes with a declared ``opt_level`` above this are skipped unless
    #: marked ``required``.
    opt_level: int = 2
    #: Legacy switch: equivalent to adding a ``WellFormedVerifier``
    #: instrument (kept for backward compatibility).
    verify_each_pass: bool = False
    #: Active :class:`~repro.transform.instrument.PassInstrument` hooks.
    instruments: List["PassInstrument"] = field(default_factory=list)
    #: Per-pass execution log, appended to by every pass run in this context.
    report: PipelineReport = field(default_factory=PipelineReport)

    _stack: ClassVar[List["PassContext"]] = []

    def __post_init__(self):
        #: Stack of records for passes currently executing (innermost last),
        #: so instruments annotate the right record even on nested calls.
        self._active_records: List[PassRecord] = []
        self._scope_depth = 0
        if self.verify_each_pass and not any(
            getattr(inst, "is_well_formed_verifier", False)
            for inst in self.instruments
        ):
            from .instrument import WellFormedVerifier

            self.instruments = list(self.instruments) + [WellFormedVerifier()]

    # -- scoping ------------------------------------------------------------

    @classmethod
    def current(cls) -> "PassContext":
        """The innermost active context, or a fresh default one."""
        if cls._stack:
            return cls._stack[-1]
        return cls()

    def __enter__(self) -> "PassContext":
        PassContext._stack.append(self)
        self._scope_depth += 1
        if self._scope_depth == 1:
            for inst in self.instruments:
                inst.enter_pass_ctx(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._scope_depth == 1:
            for inst in reversed(self.instruments):
                inst.exit_pass_ctx(self)
        self._scope_depth -= 1
        popped = PassContext._stack.pop()
        assert popped is self, "PassContext scopes must nest properly"

    # -- helpers ------------------------------------------------------------

    def bounds_for(self, variables) -> sym.VarBounds:
        """Interval table for the given symbolic variables (matched by name)."""
        out: sym.VarBounds = {}
        for var in variables:
            bound = self.sym_var_upper_bounds.get(var.name)
            if bound is not None:
                out[var] = sym.Interval(0, int(bound))
        return out

    def flag(self, name: str) -> bool:
        """Read an ``enable_*`` toggle by name (unknown flags read True)."""
        return bool(getattr(self, name, True))

    @property
    def current_record(self) -> Optional[PassRecord]:
        """The record of the pass currently executing, for instruments."""
        if self._active_records:
            return self._active_records[-1]
        return None


# ---------------------------------------------------------------------------
# Pass base classes
# ---------------------------------------------------------------------------


class Pass:
    """A module-to-module transformation with declared metadata.

    Class attributes:

    ``name``
        Registry key and report label.
    ``opt_level``
        Optimization tier; the pass is skipped when
        ``PassContext.opt_level`` is lower (unless ``required``).
        0 = mandatory lowering, 1 = standard optimization, 2 = expensive.
    ``required``
        Correctness-critical: never skipped by flags, opt_level, or
        instrument vetoes.
    ``opt_flag``
        Name of the ``PassContext`` boolean gating this pass
        (e.g. ``"enable_fusion"``), or ``None`` for always-on.
    """

    name = "pass"
    opt_level = 1
    required = False
    opt_flag: Optional[str] = None
    #: Container passes (e.g. Sequential) delegate to children and are not
    #: themselves gated, instrumented, or recorded.
    is_container = False

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        raise NotImplementedError

    def _skip_reason(self, mod: IRModule, ctx: PassContext) -> Optional[str]:
        if self.required:
            return None
        if self.opt_flag is not None and not ctx.flag(self.opt_flag):
            return f"flag:{self.opt_flag}"
        if self.opt_level > ctx.opt_level:
            return f"opt_level:{self.opt_level}>{ctx.opt_level}"
        for inst in ctx.instruments:
            if not inst.should_run(mod, self, ctx):
                return f"instrument:{inst.name}"
        return None

    def __call__(self, mod: IRModule, ctx: Optional[PassContext] = None) -> IRModule:
        ctx = ctx or PassContext.current()
        if self.is_container:
            return self.run(mod, ctx)
        record = ctx.report.new_record(self.name)
        reason = self._skip_reason(mod, ctx)
        if reason is not None:
            record.ran = False
            record.skipped_by = reason
            return mod
        ctx._active_records.append(record)
        try:
            for inst in ctx.instruments:
                inst.run_before_pass(mod, self, ctx)
            out = self.run(mod, ctx)
            for inst in reversed(ctx.instruments):
                inst.run_after_pass(out, self, ctx)
        finally:
            ctx._active_records.pop()
        return out


class FunctionPass(Pass):
    """Applies a per-function rewrite to every Relax function."""

    def transform_function(self, name, func, mod: IRModule, ctx: PassContext):
        raise NotImplementedError

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        out = mod.copy()
        for name, func in list(mod.relax_functions()):
            new_func = self.transform_function(name, func, out, ctx)
            if new_func is not None and new_func is not func:
                out.add(name, new_func)
        return out


class Sequential(Pass):
    """Runs passes in order (the fixed-order pipeline of §4.7)."""

    name = "sequential"
    is_container = True

    def __init__(self, passes: List[Pass]):
        self.passes = list(passes)

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        for p in self.passes:
            mod = p(mod, ctx)
        return mod


class LambdaPass(Pass):
    """Wrap a plain function as a pass (testing convenience)."""

    def __init__(self, fn: Callable[[IRModule, PassContext], IRModule], name="lambda"):
        self.fn = fn
        self.name = name

    def run(self, mod: IRModule, ctx: PassContext) -> IRModule:
        return self.fn(mod, ctx)


# ---------------------------------------------------------------------------
# Pass registry
# ---------------------------------------------------------------------------

_PASS_REGISTRY: Dict[str, Type[Pass]] = {}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator: register a pass under its declared ``name``."""
    key = cls.name
    if key in (None, "", "pass"):
        raise ValueError(f"pass class {cls.__name__} must declare a name")
    existing = _PASS_REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise ValueError(f"pass name {key!r} already registered by "
                         f"{existing.__name__}")
    _PASS_REGISTRY[key] = cls
    return cls


def get_pass(name: str, **kwargs) -> Pass:
    """Instantiate a registered pass by name."""
    try:
        cls = _PASS_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_PASS_REGISTRY))
        raise KeyError(f"no pass named {name!r}; registered: {known}") from None
    return cls(**kwargs)


def registered_passes() -> Tuple[str, ...]:
    """Names of all registered passes, sorted."""
    return tuple(sorted(_PASS_REGISTRY))


def pass_metadata(name: str) -> Dict[str, Any]:
    """Declared metadata of a registered pass, for introspection."""
    cls = _PASS_REGISTRY[name]
    return {
        "name": cls.name,
        "opt_level": cls.opt_level,
        "required": cls.required,
        "opt_flag": cls.opt_flag,
    }


def build_pipeline(names: Iterable[str], *,
                   skip: Sequence[str] = ()) -> Sequential:
    """Build a Sequential from registered pass names, minus ``skip``."""
    dropped = set(skip)
    return Sequential([get_pass(n) for n in names if n not in dropped])
