"""Cross-level tensor program workspace lifting (§4.4, Fig. 11).

Analysis feedback detects ``global``-scope intermediate allocations inside
tensor programs (e.g. the Stream-K split-K matmul's partial-accumulation
buffer) and jointly rewrites both levels: the tensor program gains an
explicit workspace parameter, and the graph-level call site allocates the
workspace with ``memory.alloc_tensor`` and passes it through ``call_tir``.
The lifted allocation then participates in global memory planning — the
optimization the paper notes is "only possible with the cross-level
abstractions".
"""

from __future__ import annotations

from typing import Dict, List

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import (
    DataflowBlock,
    DataflowVar,
    Function,
    GlobalVar,
    SeqExpr,
    Var,
    VarBinding,
)
from ..core.ir_module import IRModule
from ..core import op as core_op
from .memory_ops import alloc_tensor
from .pass_infra import FunctionPass, PassContext, register_pass


@register_pass
class WorkspaceLifting(FunctionPass):
    name = "WorkspaceLifting"
    opt_level = 0
    required = True

    def transform_function(self, name, func: Function, mod: IRModule, ctx: PassContext):
        body = func.body
        if not isinstance(body, SeqExpr):
            return func

        lifted_cache: Dict[str, GlobalVar] = {}
        changed = False
        new_blocks = []
        for block in body.blocks:
            new_bindings: List[VarBinding] = []
            for binding in block.bindings:
                value = binding.value
                if not core_op.is_call_to(value, core_op.call_tir_op):
                    new_bindings.append(binding)
                    continue
                callee_gv, args, sym_args = core_op.call_tir_parts(value)
                callee = mod[callee_gv.name_hint]
                if not isinstance(callee, tir.PrimFunc):
                    new_bindings.append(binding)
                    continue
                workspaces = callee.workspace_buffers()
                if not workspaces:
                    new_bindings.append(binding)
                    continue

                changed = True
                # Rewrite the tensor program once per callee; reuse after.
                if callee_gv.name_hint in lifted_cache:
                    new_gv = lifted_cache[callee_gv.name_hint]
                    lifted = mod[new_gv.name_hint]
                else:
                    lifted = callee
                    for ws in workspaces:
                        lifted = tir.replace_workspace_with_param(lifted, ws)
                    lifted = tir.PrimFunc(
                        name=f"{callee.name}_lifted",
                        params=lifted.params,
                        stages=lifted.stages,
                        num_outputs=lifted.num_outputs,
                        sym_params=lifted.sym_params,
                        attrs=dict(callee.attrs),
                    )
                    new_gv = mod.add_unique(lifted.name, lifted)
                    lifted_cache[callee_gv.name_hint] = new_gv

                # Map the workspace shapes into the caller's symbolic scope.
                var_map: Dict[sym.SymVar, sym.ExprLike] = {}
                for cbuf, arg in zip(callee.params, list(args)):
                    ann = arg.ann
                    if isinstance(ann, TensorAnn) and ann.shape is not None:
                        for cdim, adim in zip(cbuf.shape, ann.shape):
                            if isinstance(cdim, sym.SymVar) and cdim not in var_map:
                                var_map[cdim] = adim
                if sym_args is not None:
                    for cvar, expr in zip(callee.sym_params, sym_args.values):
                        if cvar not in var_map:
                            var_map[cvar] = expr

                ws_vars: List[Var] = []
                var_cls = DataflowVar if block.is_dataflow else Var
                for ws in workspaces:
                    shape = [
                        sym.simplify(sym.substitute(d, var_map)) for d in ws.shape
                    ]
                    alloc_call = alloc_tensor(shape, ws.dtype)
                    alloc_call.ann = TensorAnn(shape, ws.dtype)
                    alloc_call.provenance = value.provenance
                    ws_var = var_cls(f"{ws.name}_lifted", alloc_call.ann)
                    new_bindings.append(VarBinding(ws_var, alloc_call))
                    ws_vars.append(ws_var)

                new_call = core_op.call_tir(
                    new_gv,
                    list(args) + ws_vars,
                    value.sinfo_args,
                    sym_args,
                )
                new_call.ann = value.ann
                new_call.provenance = value.provenance
                new_bindings.append(VarBinding(binding.var, new_call))
            if changed:
                cls = DataflowBlock if block.is_dataflow else type(block)
                new_blocks.append(cls(new_bindings))
            else:
                new_blocks.append(block)

        if not changed:
            return func
        new_body = SeqExpr(new_blocks, body.body)
        new_body.ann = body.ann
        out = Function(func.params, new_body, func.ret_ann, func.attrs, func.name)
        out.ann = func.ann
        return out
