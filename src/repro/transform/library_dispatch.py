"""LibraryDispatch — partial lowering to external libraries (§4.6).

Registered "(subgraph pattern, library function)" pairs drive a
pattern-match-and-rewrite pass that lowers matched high-level operator
calls to ``call_dps_library``, gated on the target backend actually
shipping the library (the registry's availability table).  Everything the
pass does not match simply flows to later passes — the essence of partial
lowering (Fig. 6): no single-shot boundary, later passes handle the rest.

Users can register custom patterns (§4.6 "Relax also allows users to
register patterns for customizability") via :func:`register_dispatch`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.expr import Call, Expr, Op
from ..core.ir_module import IRModule
from ..core.deduction import rededuce_function
from ..core import op as core_op
from ..core.visitor import ExprMutator
from .pass_infra import FunctionPass, PassContext, register_pass

#: A dispatch rule: (op name, matcher(call) -> bool, library function name).
DispatchRule = Tuple[str, Callable[[Call], bool], str]

_DISPATCH_RULES: List[DispatchRule] = []


def register_dispatch(op_name: str, library_fn: str,
                      matcher: Optional[Callable[[Call], bool]] = None) -> None:
    """Register a pattern: calls to ``op_name`` satisfying ``matcher`` lower
    to ``library_fn``."""
    _DISPATCH_RULES.append((op_name, matcher or (lambda call: True), library_fn))


def default_rules() -> List[DispatchRule]:
    return list(_DISPATCH_RULES)


def _is_heavy_matmul(call: Call) -> bool:
    """Dispatch matmuls to the vendor GEMM; the paper lowers 'heavy-load
    matrix multiplications' while keeping matvec on generated kernels.
    Quantized-weight matmuls opt out (the dequant must fuse in, Fig. 9)."""
    return not call.attrs.get("no_library")


register_dispatch(
    "matmul", "cublas.matmul",
    lambda call: _is_heavy_matmul(call) and not call.attrs.get("transpose_b"),
)
register_dispatch(
    "matmul", "cublas.matmul_nt",
    lambda call: _is_heavy_matmul(call) and bool(call.attrs.get("transpose_b")),
)
register_dispatch(
    "attention", "flashinfer.attention", lambda call: call.attrs.get("causal", True)
)
register_dispatch("paged_attention", "flashinfer.paged_attention")
register_dispatch("paged_prefill", "flashinfer.paged_prefill")
register_dispatch("paged_verify", "flashinfer.paged_verify")
register_dispatch("rms_norm", "cutlass.rms_norm")
register_dispatch("softmax", "cudnn.softmax")


class _Dispatcher(ExprMutator):
    def __init__(self, ctx: PassContext, rules: List[DispatchRule]):
        super().__init__()
        self.ctx = ctx
        self.rules = rules
        self.rewritten = 0

    def visit_call(self, call: Call) -> Expr:
        visited = super().visit_call(call)
        if not isinstance(visited, Call):
            return visited
        call = visited
        op = call.op
        if not isinstance(op, Op):
            return call
        for op_name, matcher, lib_name in self.rules:
            if op.name != op_name:
                continue
            if not self.ctx.registry.available(lib_name, self.ctx.device.backend):
                continue
            if not matcher(call):
                continue
            out_ann = call.ann if call.ann is not None else op.deduce(call)
            from ..core.annotations import TensorAnn

            if not isinstance(out_ann, TensorAnn) or out_ann.shape is None:
                continue
            # Library calls are DPS: only tensor args flow through.
            tensor_args = [a for a in call.args if _is_tensor(a)]
            if len(tensor_args) != len(call.args):
                continue  # shape-valued args need the tensor-program path
            new_call = core_op.call_dps_library(lib_name, tensor_args, out_ann)
            new_call.ann = out_ann
            new_call.provenance = call.provenance or (op.name,)
            self.rewritten += 1
            return new_call
        return call


def _is_tensor(expr: Expr) -> bool:
    from ..core.annotations import TensorAnn

    return isinstance(expr.ann, TensorAnn)


@register_pass
class LibraryDispatch(FunctionPass):
    name = "LibraryDispatch"
    opt_level = 1
    opt_flag = "enable_library_dispatch"

    def __init__(self, rules: Optional[List[DispatchRule]] = None):
        self.rules = rules

    def transform_function(self, name, func, mod: IRModule, ctx: PassContext):
        if not ctx.device.has_vendor_library:
            return func
        rules = self.rules if self.rules is not None else default_rules()
        dispatcher = _Dispatcher(ctx, rules)
        new_func = dispatcher.visit_function(func)
        if new_func is not func:
            from ..core.expr import Function

            def lookup(gvar):
                target = mod[gvar.name_hint] if gvar.name_hint in mod else None
                return target.signature_ann() if isinstance(target, Function) else None

            rededuce_function(new_func, lookup)
        return new_func
