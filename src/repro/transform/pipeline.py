"""The end-to-end compilation pipeline (Figure 13).

Fixed order, no fixed point (§4.7):

1.  **LibraryDispatch** — partial library lowering first, to leverage
    external libraries on the target platform;
2.  **LegalizeOps** — generate tensor programs for the remaining
    high-level operator calls;
3.  **DeadCodeElimination** on dataflow blocks;
4.  **AnnotatePatternKind** — Algorithm 1 analysis feedback;
5.  **FuseOps** (Algorithm 2) + **FuseTensorIR** — cross-level fusion;
6.  **WorkspaceLifting** — tensor-program workspaces to graph level
    (before memory planning, which is what "necessitates Relax's
    cross-level abstraction design");
7.  **LowerCallTIR** — explicit allocation + DPS calls (Fig. 5);
8.  **MemoryPlan** (Algorithm 3) + **InsertKills**;
9.  **CUDAGraphOffload**;
10. **VMCodegen** — symbolic shape lowering + instruction emission.

``build()`` runs the whole pipeline and returns a runnable Executable;
each stage can also be invoked separately for testing and ablations
(Fig. 17 toggles fusion / library dispatch / CUDA Graph via PassContext
flags).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.ir_module import IRModule
from ..runtime.device import Device, TEST_DEVICE
from ..runtime.vm import Executable, VirtualMachine
from .annotate_pattern import AnnotatePatternKind
from .cuda_graph import CUDAGraphOffload
from .dead_code import DeadCodeElimination
from .fold_constant import FoldConstant
from .fuse_ops import FuseOps
from .fuse_tensorir import FuseTensorIR
from .legalize import LegalizeOps
from .library_dispatch import LibraryDispatch
from .lower_call_tir import LowerCallTIR
from .memory_plan import InsertKills, MemoryPlan
from .pass_infra import Pass, PassContext, Sequential
from .to_vm import VMCodegen
from .tune_tir import ScheduleRules, TuneTir
from .workspace_lift import WorkspaceLifting


class _OptionalTuning(Pass):
    """Runs Ansor-style tuning when the context asks for it (§4.6)."""

    name = "OptionalTuning"

    def run(self, mod, ctx):
        if ctx.enable_autotuning:
            return TuneTir()(mod, ctx)
        return mod


def default_pipeline() -> Sequential:
    """The optimization pipeline up to (but excluding) codegen."""
    return Sequential(
        [
            FoldConstant(),
            LibraryDispatch(),
            LegalizeOps(),
            DeadCodeElimination(),
            AnnotatePatternKind(),
            FuseOps(),
            FuseTensorIR(),
            ScheduleRules(),
            _OptionalTuning(),
            WorkspaceLifting(),
            LowerCallTIR(),
            MemoryPlan(),
            InsertKills(),
            CUDAGraphOffload(),
        ]
    )


def optimize(mod: IRModule, ctx: Optional[PassContext] = None) -> IRModule:
    """Run the optimization pipeline, returning the lowered module."""
    ctx = ctx or PassContext()
    return default_pipeline()(mod, ctx)


def build(
    mod: IRModule,
    device: Device = TEST_DEVICE,
    *,
    sym_var_upper_bounds: Optional[Dict[str, int]] = None,
    enable_library_dispatch: bool = True,
    enable_fusion: bool = True,
    enable_memory_planning: bool = True,
    enable_cuda_graph: bool = True,
    enable_autotuning: bool = False,
) -> Executable:
    """Compile an IRModule into a VM executable for ``device``."""
    ctx = PassContext(
        device=device,
        sym_var_upper_bounds=dict(sym_var_upper_bounds or {}),
        enable_library_dispatch=enable_library_dispatch,
        enable_fusion=enable_fusion,
        enable_memory_planning=enable_memory_planning,
        enable_cuda_graph=enable_cuda_graph,
        enable_autotuning=enable_autotuning,
    )
    lowered = optimize(mod, ctx)
    return VMCodegen()(lowered, ctx)


def compile_and_load(
    mod: IRModule,
    device: Device = TEST_DEVICE,
    concrete: bool = True,
    **build_kwargs,
) -> VirtualMachine:
    """Convenience: build + instantiate a VM."""
    exe = build(mod, device, **build_kwargs)
    return VirtualMachine(
        exe, device, concrete=concrete,
        enable_cuda_graph=build_kwargs.get("enable_cuda_graph", True),
    )
