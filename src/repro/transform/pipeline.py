"""The end-to-end compilation pipeline (Figure 13).

Fixed order, no fixed point (§4.7):

1.  **LibraryDispatch** — partial library lowering first, to leverage
    external libraries on the target platform;
2.  **LegalizeOps** — generate tensor programs for the remaining
    high-level operator calls;
3.  **DeadCodeElimination** on dataflow blocks;
4.  **AnnotatePatternKind** — Algorithm 1 analysis feedback;
5.  **FuseOps** (Algorithm 2) + **FuseTensorIR** — cross-level fusion;
6.  **WorkspaceLifting** — tensor-program workspaces to graph level
    (before memory planning, which is what "necessitates Relax's
    cross-level abstraction design");
7.  **LowerCallTIR** — explicit allocation + DPS calls (Fig. 5);
8.  **MemoryPlan** (Algorithm 3) + **InsertKills**;
9.  **CUDAGraphOffload**;
10. **VMCodegen** — symbolic shape lowering + instruction emission.

The pipeline is assembled *by name* from the pass registry
(:data:`DEFAULT_PIPELINE`), so stages can be reordered, dropped, or
replaced without touching this module.  Ablations (Fig. 17) and tuning
(§4.6) no longer need special-case wrappers: each pass declares the
``PassContext`` flag that gates it and the infrastructure skips it
uniformly, recording the skip in the context's
:class:`~repro.transform.pass_infra.PipelineReport`.

``build()`` runs the whole pipeline and returns a runnable Executable;
each stage can also be invoked separately for testing and ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.ir_module import IRModule
from ..runtime.device import Device, TEST_DEVICE
from ..runtime.vm import Executable, VirtualMachine

# The pass modules must be imported so their @register_pass decorators run.
from . import (  # noqa: F401
    annotate_pattern,
    cuda_graph,
    dead_code,
    fold_constant,
    fuse_ops,
    fuse_tensorir,
    legalize,
    library_dispatch,
    lower_call_tir,
    memory_plan,
    refine_shapes,
    to_vm,
    tune_tir,
    workspace_lift,
)
from .instrument import PassInstrument
from .pass_infra import (
    PassContext,
    PipelineReport,
    Sequential,
    build_pipeline,
)

#: The optimization pipeline up to (but excluding) codegen, by registry
#: name.  ``TuneTir`` rides along gated by ``enable_autotuning`` (off by
#: default) — no special-case wrapper needed.
DEFAULT_PIPELINE: Tuple[str, ...] = (
    "FoldConstant",
    "LibraryDispatch",
    "LegalizeOps",
    "DeadCodeElimination",
    "AnnotatePatternKind",
    "FuseOps",
    "FuseTensorIR",
    "ScheduleRules",
    "TuneTir",
    "WorkspaceLifting",
    "LowerCallTIR",
    "MemoryPlan",
    "InsertKills",
    "CUDAGraphOffload",
)


def default_pipeline(names: Optional[Iterable[str]] = None, *,
                     skip: Sequence[str] = ()) -> Sequential:
    """The optimization pipeline, overridable by registered pass name."""
    return build_pipeline(names or DEFAULT_PIPELINE, skip=skip)


def optimize(mod: IRModule, ctx: Optional[PassContext] = None, *,
             return_report: bool = False):
    """Run the optimization pipeline, returning the lowered module.

    With ``return_report=True`` returns ``(module, PipelineReport)``; the
    report is also always available as ``ctx.report``.
    """
    ctx = ctx or PassContext.current()
    lowered = default_pipeline()(mod, ctx)
    if return_report:
        return lowered, ctx.report
    return lowered


def _resolve_context(
    ctx: Optional[PassContext],
    device: Optional[Device],
    sym_var_upper_bounds: Optional[Dict[str, int]],
    instruments: Optional[Sequence[PassInstrument]],
    opt_level: Optional[int],
    flags: Dict[str, Optional[bool]],
) -> PassContext:
    """One context for the whole compile: explicit ``ctx`` wins, then the
    scoped ``PassContext.current()``, then a fresh default.  Explicitly
    passed keyword options override the resolved context's fields."""
    if ctx is None and PassContext._stack:
        ctx = PassContext.current()
    if ctx is None:
        ctx = PassContext(device=device or TEST_DEVICE)
    elif device is not None:
        ctx.device = device
    if sym_var_upper_bounds is not None:
        ctx.sym_var_upper_bounds = dict(sym_var_upper_bounds)
    if instruments is not None:
        ctx.instruments = list(instruments)
    if opt_level is not None:
        ctx.opt_level = opt_level
    for flag, value in flags.items():
        if value is not None:
            setattr(ctx, flag, value)
    return ctx


def build(
    mod: IRModule,
    device: Optional[Device] = None,
    *,
    ctx: Optional[PassContext] = None,
    sym_var_upper_bounds: Optional[Dict[str, int]] = None,
    enable_library_dispatch: Optional[bool] = None,
    enable_fusion: Optional[bool] = None,
    enable_memory_planning: Optional[bool] = None,
    enable_cuda_graph: Optional[bool] = None,
    enable_autotuning: Optional[bool] = None,
    instruments: Optional[Sequence[PassInstrument]] = None,
    opt_level: Optional[int] = None,
    return_report: bool = False,
) -> Executable:
    """Compile an IRModule into a VM executable for ``device``.

    The pipeline options come from, in priority order: explicit keyword
    arguments, a ``ctx`` argument, the innermost ``with PassContext(...)``
    scope, or the defaults.  With ``return_report=True`` returns
    ``(Executable, PipelineReport)``; the report is always attached to the
    executable as ``exe.pipeline_report``.
    """
    ctx = _resolve_context(
        ctx, device, sym_var_upper_bounds, instruments, opt_level,
        {
            "enable_library_dispatch": enable_library_dispatch,
            "enable_fusion": enable_fusion,
            "enable_memory_planning": enable_memory_planning,
            "enable_cuda_graph": enable_cuda_graph,
            "enable_autotuning": enable_autotuning,
        },
    )
    with ctx:
        lowered = optimize(mod, ctx)
        exe = to_vm.VMCodegen()(lowered, ctx)
    exe.pipeline_report = ctx.report
    if return_report:
        return exe, ctx.report
    return exe


def compile_and_load(
    mod: IRModule,
    device: Optional[Device] = None,
    concrete: bool = True,
    ctx: Optional[PassContext] = None,
    **build_kwargs,
) -> VirtualMachine:
    """Convenience: build + instantiate a VM.

    The PassContext is resolved once and threads through both the
    compiler and the VM, so options like ``enable_cuda_graph`` cannot
    diverge between the two.
    """
    flags = {
        flag: build_kwargs.pop(flag, None)
        for flag in (
            "enable_library_dispatch",
            "enable_fusion",
            "enable_memory_planning",
            "enable_cuda_graph",
            "enable_autotuning",
        )
    }
    ctx = _resolve_context(
        ctx,
        device,
        build_kwargs.pop("sym_var_upper_bounds", None),
        build_kwargs.pop("instruments", None),
        build_kwargs.pop("opt_level", None),
        flags,
    )
    if build_kwargs:
        unknown = ", ".join(sorted(build_kwargs))
        raise TypeError(f"compile_and_load() got unexpected arguments: {unknown}")
    exe = build(mod, ctx=ctx)
    return VirtualMachine(
        exe, ctx.device, concrete=concrete,
        enable_cuda_graph=ctx.enable_cuda_graph,
    )
