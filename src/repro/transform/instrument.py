"""Built-in pass instruments (TVM-style ``PassInstrument`` hooks).

An instrument observes (and can veto) every pass run inside a
:class:`~repro.transform.pass_infra.PassContext`.  The lifecycle is:

* ``enter_pass_ctx`` / ``exit_pass_ctx`` — fired when the owning context
  is entered / left as a ``with`` block;
* ``should_run`` — consulted before every non-required pass; returning
  False skips it (recorded as ``instrument:<name>`` in the report);
* ``run_before_pass`` / ``run_after_pass`` — bracket each executed pass.

Built-ins:

* :class:`Timing` — per-pass wall time, filled into the context's
  :class:`~repro.transform.pass_infra.PipelineReport`;
* :class:`IRStats` — function/binding/expression-node counts
  before → after each pass;
* :class:`WellFormedVerifier` — runs the well-formedness checker after
  every pass, naming the failing pass in the raised error (replaces the
  old ``verify_each_pass`` ad-hoc flag, which silently skipped the
  symbolic-scope checks);
* :class:`PrintIRDiff` — prints the module whenever a pass changed it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from ..core.ir_module import IRModule
from ..core.printer import format_module
from ..core.visitor import ExprVisitor
from ..core.well_formed import WellFormedError, well_formed


class PassInstrument:
    """Observer with veto power over pipeline passes."""

    name = "instrument"

    def enter_pass_ctx(self, ctx) -> None:
        """Called when the owning PassContext scope is entered."""

    def exit_pass_ctx(self, ctx) -> None:
        """Called when the owning PassContext scope is left."""

    def should_run(self, mod: IRModule, pass_, ctx) -> bool:
        """Return False to skip ``pass_`` (required passes are exempt)."""
        return True

    def run_before_pass(self, mod: IRModule, pass_, ctx) -> None:
        """Called just before an executed pass transforms ``mod``."""

    def run_after_pass(self, mod: IRModule, pass_, ctx) -> None:
        """Called with the transformed module after the pass ran."""


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


class Timing(PassInstrument):
    """Record per-pass wall time into the context's PipelineReport.

    Also keeps its own ``records`` list of ``(pass_name, seconds)`` in
    execution order, so a single Timing instance can be shared across
    contexts (e.g. one per benchmark sweep).
    """

    name = "timing"

    def __init__(self):
        self._starts: List[float] = []
        self.records: List[Tuple[str, float]] = []

    def run_before_pass(self, mod, pass_, ctx) -> None:
        self._starts.append(time.perf_counter())

    def run_after_pass(self, mod, pass_, ctx) -> None:
        duration = time.perf_counter() - self._starts.pop()
        self.records.append((pass_.name, duration))
        record = ctx.current_record
        if record is not None:
            record.duration_s = (record.duration_s or 0.0) + duration

    def executed_names(self) -> List[str]:
        return [name for name, _ in self.records]

    def total_s(self) -> float:
        return sum(duration for _, duration in self.records)


# ---------------------------------------------------------------------------
# IRStats
# ---------------------------------------------------------------------------


class _NodeCounter(ExprVisitor):
    def __init__(self):
        self.nodes = 0
        self.bindings = 0

    def visit(self, expr) -> None:
        self.nodes += 1
        super().visit(expr)

    def visit_binding(self, binding) -> None:
        self.bindings += 1
        super().visit_binding(binding)


def ir_stats(mod: IRModule) -> Dict[str, int]:
    """Structural size of a module: functions, bindings, expression nodes."""
    counter = _NodeCounter()
    relax_count = 0
    for _, func in mod.relax_functions():
        relax_count += 1
        counter.visit(func)
    tir_count = sum(1 for _ in mod.tir_functions())
    return {
        "relax_functions": relax_count,
        "tir_functions": tir_count,
        "bindings": counter.bindings,
        "nodes": counter.nodes,
    }


class IRStats(PassInstrument):
    """Record module size before → after every pass."""

    name = "ir_stats"

    def __init__(self):
        self._before: List[Optional[Dict[str, int]]] = []

    def run_before_pass(self, mod, pass_, ctx) -> None:
        stats = ir_stats(mod) if isinstance(mod, IRModule) else None
        self._before.append(stats)

    def run_after_pass(self, mod, pass_, ctx) -> None:
        before = self._before.pop()
        after = ir_stats(mod) if isinstance(mod, IRModule) else None
        record = ctx.current_record
        if record is None or before is None or after is None:
            return
        record.metrics["ir_before"] = before
        record.metrics["ir_after"] = after


# ---------------------------------------------------------------------------
# WellFormedVerifier
# ---------------------------------------------------------------------------


class WellFormedVerifier(PassInstrument):
    """Verify IR invariants after every pass, blaming the pass by name.

    Unlike the old ``verify_each_pass`` flag (which hard-coded
    ``check_sym_scope=False`` and so silently masked symbolic-scope
    violations), the symbolic-scope checks run by default.
    """

    name = "well_formed_verifier"
    is_well_formed_verifier = True

    def __init__(self, check_sym_scope: bool = True):
        self.check_sym_scope = check_sym_scope

    def run_after_pass(self, mod, pass_, ctx) -> None:
        if not isinstance(mod, IRModule):
            return  # codegen produced an Executable; nothing to verify
        try:
            well_formed(mod, check_sym_scope=self.check_sym_scope)
        except WellFormedError as err:
            raise WellFormedError(
                f"IR is ill-formed after pass {pass_.name!r}: {err}"
            ) from err


# ---------------------------------------------------------------------------
# PrintIRDiff
# ---------------------------------------------------------------------------


class PrintIRDiff(PassInstrument):
    """Print the module after every pass that changed it.

    ``only`` restricts printing to the named passes; ``stream`` defaults
    to stdout (pass an ``io.StringIO`` to capture).
    """

    name = "print_ir_diff"

    def __init__(self, only: Optional[Sequence[str]] = None,
                 stream: Optional[TextIO] = None):
        self.only = set(only) if only is not None else None
        self.stream = stream
        self._before: List[Optional[str]] = []

    def _print(self, text: str) -> None:
        if self.stream is not None:
            self.stream.write(text + "\n")
        else:
            print(text)

    def run_before_pass(self, mod, pass_, ctx) -> None:
        text = format_module(mod) if isinstance(mod, IRModule) else None
        self._before.append(text)

    def run_after_pass(self, mod, pass_, ctx) -> None:
        before = self._before.pop()
        if self.only is not None and pass_.name not in self.only:
            return
        after = format_module(mod) if isinstance(mod, IRModule) else None
        if after is None or after == before:
            return
        self._print(f"== after {pass_.name} " + "=" * 40)
        self._print(after)
