"""Greedy plan-level shrinking of failing fuzz cases.

The shrinker never edits IR text: it edits the :class:`~repro.fuzz.gen.Plan`
and re-materializes, so every candidate is either well-formed by
construction or rejected outright (``PlanError``).  A candidate edit is
accepted when the edited plan still fails with the *same failure kind* as
the original; the process repeats to a fixpoint.

Edit vocabulary, roughly largest-cut first:

* keep a single output;
* drop one step (with transitive garbage collection of now-unused steps,
  parameters, and sub-functions);
* replace a step's result with a fresh function parameter of the same
  shape/dtype — this disconnects whole producer chains at once;
* collapse an ``if`` to its then-branch op;
* halve the runtime value of a symbolic dimension.

``predicate`` can be injected (tests use artificial predicates); by default
it runs the differential oracle via :func:`failure_of`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .gen import ParamSpec, Plan, PlanError, Step, SubFunc, build_module, value_infos
from .oracle import FuzzFailure, run_plan

Handle = Tuple[str, int]  # ("p", param index) | ("s", step index)


def failure_of(plan: Plan) -> Optional[FuzzFailure]:
    """The plan's oracle failure, or None (passing or invalid plan)."""
    try:
        run_plan(plan)
    except FuzzFailure as failure:
        return failure
    except PlanError:
        return None
    return None


# ---------------------------------------------------------------------------
# Handle-based rebuild (GC + renumber)
# ---------------------------------------------------------------------------


def _handle(plan: Plan, value_idx: int) -> Handle:
    n = len(plan.params)
    return ("p", value_idx) if value_idx < n else ("s", value_idx - n)


def _gc(plan: Plan) -> Optional[Plan]:
    """Drop steps/params/subfuncs unreachable from the outputs, renumber."""
    if not plan.outputs:
        return None
    needed = set()
    work = [_handle(plan, i) for i in plan.outputs]
    while work:
        h = work.pop()
        if h in needed:
            continue
        needed.add(h)
        if h[0] == "s":
            step = plan.steps[h[1]]
            work.extend(_handle(plan, i) for i in step.inputs)

    keep_params = [i for i in range(len(plan.params)) if ("p", i) in needed]
    keep_steps = [j for j in range(len(plan.steps)) if ("s", j) in needed]
    renum: Dict[Handle, int] = {}
    for new_i, old_i in enumerate(keep_params):
        renum[("p", old_i)] = new_i
    for new_j, old_j in enumerate(keep_steps):
        renum[("s", old_j)] = len(keep_params) + new_j

    steps = []
    for old_j in keep_steps:
        s = plan.steps[old_j]
        steps.append(Step(s.kind, s.op,
                          [renum[_handle(plan, i)] for i in s.inputs],
                          dict(s.attrs)))
    used_funcs = {s.attrs.get("func") for s in steps if s.kind == "call"}
    outputs = sorted({renum[_handle(plan, i)] for i in plan.outputs})
    return Plan(
        plan.seed, dict(plan.dims),
        [plan.params[i] for i in keep_params],
        steps, outputs,
        [sf for sf in plan.subfuncs if sf.name in used_funcs],
    )


# ---------------------------------------------------------------------------
# Candidate edits
# ---------------------------------------------------------------------------


def _with(plan: Plan, *, params=None, steps=None, outputs=None,
          dims=None) -> Plan:
    return Plan(
        plan.seed,
        dict(plan.dims) if dims is None else dims,
        list(plan.params) if params is None else params,
        list(plan.steps) if steps is None else steps,
        list(plan.outputs) if outputs is None else outputs,
        list(plan.subfuncs),
    )


def _candidates(plan: Plan) -> Iterator[Plan]:
    n_params = len(plan.params)

    # 1. Single output.
    if len(plan.outputs) > 1:
        for out in plan.outputs:
            cand = _gc(_with(plan, outputs=[out]))
            if cand is not None:
                yield cand

    # 2. Drop one step (latest first); outputs of the dropped step go away.
    for j in reversed(range(len(plan.steps))):
        vi = n_params + j
        outputs = [o for o in plan.outputs if o != vi]
        if not outputs:
            continue
        steps = [s for k, s in enumerate(plan.steps) if k != j]
        # Renumbering happens in _gc; first rewrite references to the
        # dropped value — any step consuming it keeps plan invalid, so the
        # drop only applies when nothing downstream consumes value `vi`.
        if any(vi in s.inputs for s in steps):
            continue
        shifted = []
        for s in steps:
            shifted.append(Step(
                s.kind, s.op,
                [i if i < vi else i - 1 for i in s.inputs],
                dict(s.attrs)))
        cand = _gc(_with(plan, steps=shifted,
                         outputs=[o if o < vi else o - 1 for o in outputs]))
        if cand is not None:
            yield cand

    # 3. Replace one step's result with a fresh parameter.
    try:
        infos = value_infos(plan)
    except Exception:
        infos = None
    if infos is not None:
        from .gen import _is_simple_token

        for j in reversed(range(len(plan.steps))):
            vi = n_params + j
            info = infos[vi]
            if (info.kind != "tensor" or info.tokens is None
                    or not all(_is_simple_token(t) for t in info.tokens)):
                continue
            if not any(vi in s.inputs for s in plan.steps) \
                    and vi not in plan.outputs:
                continue
            new_param = ParamSpec(f"q{j}", list(info.tokens),
                                  info.dtype or "f32")
            new_idx = len(plan.params)  # before renumber: appended param
            params = list(plan.params) + [new_param]
            # Appending a param shifts every step-value index up by one.
            def remap(i: int) -> int:
                if i == vi:
                    return new_idx
                return i + 1 if i >= n_params else i
            steps = []
            for k, s in enumerate(plan.steps):
                if k == j:
                    continue
                steps.append(Step(s.kind, s.op,
                                  [remap(i) for i in s.inputs],
                                  dict(s.attrs)))
            # Step j is gone: step indices above j shift down one more.
            old_vi = vi + 1  # position of dropped value after param insert

            def collapse(i: int) -> int:
                return i - 1 if i > old_vi else i
            steps = [Step(s.kind, s.op, [collapse(i) for i in s.inputs],
                          dict(s.attrs)) for s in steps]
            outputs = sorted({collapse(remap(o)) for o in plan.outputs})
            cand = _gc(_with(plan, params=params, steps=steps,
                             outputs=outputs))
            if cand is not None:
                yield cand

    # 4. Collapse `if` to its then-op.
    for j, s in enumerate(plan.steps):
        if s.kind != "if":
            continue
        steps = list(plan.steps)
        steps[j] = Step("unary", s.attrs["then_op"], [s.inputs[1]])
        cand = _gc(_with(plan, steps=steps))
        if cand is not None:
            yield cand

    # 5. Halve a symbolic dimension's runtime value.
    for name in sorted(plan.dims):
        v = plan.dims[name]
        if v > 1:
            dims = dict(plan.dims)
            dims[name] = v // 2
            yield _with(plan, dims=dims)


# ---------------------------------------------------------------------------
# Greedy fixpoint
# ---------------------------------------------------------------------------


def _size(plan: Plan) -> Tuple[int, int, int]:
    return (len(plan.steps), len(plan.params), sum(plan.dims.values()))


def shrink(
    plan: Plan,
    failure: Optional[FuzzFailure] = None,
    *,
    predicate: Optional[Callable[[Plan], Optional[FuzzFailure]]] = None,
    max_attempts: int = 300,
) -> Tuple[Plan, Optional[FuzzFailure]]:
    """Minimize ``plan`` while it keeps failing with the same kind.

    Returns the smallest plan found and its (re-evaluated) failure.  When
    ``predicate`` is given it replaces the oracle: it must return a
    truthy failure object for plans that still reproduce.
    """
    check = predicate if predicate is not None else failure_of
    if failure is None:
        failure = check(plan)
        if not failure:
            return plan, None
    kind = getattr(failure, "kind", None)

    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in _candidates(plan):
            if attempts >= max_attempts:
                break
            if _size(cand) >= _size(plan):
                continue
            attempts += 1
            try:
                build_module(cand)
            except Exception:
                continue
            got = check(cand)
            if not got:
                continue
            if kind is not None and getattr(got, "kind", None) != kind:
                continue
            plan, failure = cand, got
            improved = True
            break
    return plan, failure
