"""Localize a differential-oracle divergence to the first differing op.

When two configurations of the same plan disagree, the final outputs say
*that* something broke but not *where*.  This module re-runs both
executables under :class:`repro.obs.VirtualMachineProfiler` with output
capture on, aligns the optimized kernel stream to the reference stream by
provenance (a fused kernel's chain ends with the site of the group's last
member, which is the op whose value it produces), and reports the first
aligned pair whose captured outputs differ.

Best-effort by design: the oracle appends whatever this finds to the
failure detail, and swallows any error raised here — localization must
never mask the original divergence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import VirtualMachineProfiler
from ..obs.provenance import render
from ..obs.trace import TraceEvent
from ..runtime import NDArray, TEST_DEVICE


def _arrays_differ(a: np.ndarray, b: np.ndarray,
                   rtol: float, atol: float) -> Optional[str]:
    if a.shape != b.shape:
        return f"shape {a.shape} vs {b.shape}"
    if a.dtype.kind in "iub" or b.dtype.kind in "iub":
        if not np.array_equal(a, b):
            return "integer mismatch"
        return None
    with np.errstate(invalid="ignore"):
        close = np.isclose(a, b, rtol=rtol, atol=atol, equal_nan=True)
    if close.all():
        return None
    diff = np.abs(a.astype("f8") - b.astype("f8"))
    return f"max abs diff {np.nanmax(diff):.3g}"


def _captured_events(vm: VirtualMachineProfiler) -> List[TraceEvent]:
    return [e for e in vm.events
            if e.kind in ("kernel", "library") and e.outputs is not None]


def first_divergent_op(ref_exe, opt_exe, inputs: Sequence,
                       device=TEST_DEVICE, *,
                       rtol: float = 1e-4, atol: float = 1e-5) -> Optional[str]:
    """Run both executables traced; name the first op whose outputs differ.

    Returns a one-line human-readable location, or ``None`` when every
    aligned pair agrees (the divergence then comes from unaligned ops or
    pure value-plumbing, and the final-output diff stands alone).
    """
    ref_vm = VirtualMachineProfiler(ref_exe, device, concrete=True,
                                    capture_outputs=True)
    opt_vm = VirtualMachineProfiler(opt_exe, device, concrete=True,
                                    capture_outputs=True)
    args = [NDArray.from_numpy(np.asarray(a)) for a in inputs]
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        ref_vm.run("main", *args)
        opt_vm.run("main", *[NDArray.from_numpy(np.asarray(a)) for a in inputs])

    # Reference events queue up per site; optimized events consume in order.
    by_site: Dict[str, List[TraceEvent]] = {}
    for event in _captured_events(ref_vm):
        if event.prov:
            by_site.setdefault(event.prov[-1], []).append(event)

    for event in _captured_events(opt_vm):
        if not event.prov:
            continue
        queue = by_site.get(event.prov[-1])
        if not queue:
            continue
        ref_event = queue.pop(0)
        for ref_out, opt_out in zip(ref_event.outputs, event.outputs):
            why = _arrays_differ(np.asarray(ref_out), np.asarray(opt_out),
                                 rtol, atol)
            if why is not None:
                return (
                    f"first divergent op: {render(event.prov)} "
                    f"({ref_event.name} vs {event.name}): {why}"
                )
    return None
