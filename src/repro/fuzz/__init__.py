"""Differential fuzzing for the Relax reproduction.

Structured random program generation (:mod:`repro.fuzz.gen`), a
multi-configuration differential oracle (:mod:`repro.fuzz.oracle`), a
plan-level shrinker (:mod:`repro.fuzz.shrink`), and replayable repro files
(:mod:`repro.fuzz.corpus`).  Run it directly::

    python -m repro.fuzz --seeds 200
"""

from .corpus import load_repro, replay_repro, write_repro
from .gen import (
    ParamSpec,
    Plan,
    PlanError,
    Step,
    SubFunc,
    build_module,
    generate,
    make_inputs,
)
from .oracle import FuzzFailure, aliasing_violations, config_matrix, run_plan
from .shrink import failure_of, shrink

__all__ = [
    "FuzzFailure",
    "ParamSpec",
    "Plan",
    "PlanError",
    "Step",
    "SubFunc",
    "aliasing_violations",
    "build_module",
    "config_matrix",
    "failure_of",
    "generate",
    "load_repro",
    "make_inputs",
    "replay_repro",
    "run_plan",
    "shrink",
    "write_repro",
]
