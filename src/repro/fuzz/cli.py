"""Command-line driver: ``python -m repro.fuzz --seeds N``.

Runs the differential oracle over a contiguous seed range (optionally
bounded by a wall-clock budget), shrinks every failure, and writes
replayable repro files.  Exit status is the number of distinct failing
seeds (0 = clean run), so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .corpus import replay_repro, write_repro
from .gen import generate
from .oracle import FuzzFailure
from .shrink import failure_of, shrink


def _default_out_dir() -> str:
    # Inside the repo checkout, failures land next to the committed corpus;
    # when installed elsewhere, fall back to the working directory.
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    corpus = os.path.join(repo, "tests", "fuzz_corpus")
    if os.path.isdir(os.path.dirname(corpus)):
        return os.path.join(repo, "fuzz-failures")
    return os.path.join(os.getcwd(), "fuzz-failures")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the Relax reproduction pipeline.",
    )
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to run (default: 25)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first seed of the range (default: 0)")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="stop after this many seconds, even mid-range")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="cap generated program size (ops per program)")
    parser.add_argument("--out-dir", default=None,
                        help="where shrunk repro files go "
                             "(default: <repo>/fuzz-failures)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="record failures without minimizing them")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first failing seed")
    parser.add_argument("--replay", metavar="REPRO.json", default=None,
                        help="replay one repro file instead of fuzzing")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print failures and the final summary")
    args = parser.parse_args(argv)

    if args.replay is not None:
        failure = replay_repro(args.replay)
        if failure is None:
            print(f"{args.replay}: no longer reproduces (fixed)")
            return 0
        print(f"{args.replay}: still fails: {failure}")
        return 1

    out_dir = args.out_dir or _default_out_dir()
    t0 = time.time()
    ran = 0
    failures = 0
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        if args.budget_s is not None and time.time() - t0 > args.budget_s:
            print(f"budget exhausted after {ran} seeds")
            break
        plan = generate(seed, max_steps=args.max_steps)
        failure = failure_of(plan)
        ran += 1
        if failure is None:
            if not args.quiet and ran % 25 == 0:
                print(f"... {ran} seeds ok ({time.time() - t0:.1f}s)")
            continue
        failures += 1
        print(f"seed {seed}: {failure}")
        if not args.no_shrink:
            plan, shrunk = shrink(plan, failure)
            if shrunk is not None:
                failure = shrunk
            print(f"  shrunk to {len(plan.steps)} step(s), "
                  f"{len(plan.params)} param(s)")
        path = write_repro(out_dir, plan, failure)
        print(f"  wrote {path}")
        if args.fail_fast:
            break

    elapsed = time.time() - t0
    print(f"{ran} seed(s), {failures} failure(s), {elapsed:.1f}s")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
