"""Structured random Relax program generation.

The generator does not emit IR text: it produces a :class:`Plan` — a small,
JSON-serializable recipe (symbolic dims with concrete runtime values,
parameter specs, a list of op steps, output indices) — and
:func:`build_module` materializes a plan into a fresh, well-formed
:class:`~repro.core.ir_module.IRModule` through the ordinary
:class:`~repro.core.block_builder.BlockBuilder` API.  Everything downstream
(the differential oracle, the shrinker, corpus repro files) works on plans:

* every program reproduces from a single integer (``generate(seed)``);
* the shrinker edits the *plan* (drop steps, shrink dims, replace a step
  with a fresh parameter) and re-materializes, so minimized repros stay
  well-formed by construction;
* runtime inputs derive from the plan too (:func:`make_inputs`), so a
  shrunk plan always gets consistent inputs.

Generation is materialization-guided: each candidate step is applied to a
scratch BlockBuilder immediately, and steps whose construction-time
deduction rejects them are simply discarded.  This keeps the generator
honest — it cannot emit a program the front-end itself would refuse — while
the op vocabulary comes from the fuzz metadata registered by each op module
(:func:`repro.ops.registry.register_fuzz`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import sym
from ..core import (
    BlockBuilder,
    Call,
    DataflowBlock,
    DataflowVar,
    GlobalVar,
    If,
    SeqExpr,
    ShapeExpr,
    Var,
    VarBinding,
)
from ..core import Tuple as IRTuple
from ..core import TupleGetItem
from ..core.annotations import ShapeAnn, TensorAnn, TupleAnn
from ..core.deduction import deduce_call
from ..core.ir_module import IRModule
from ..ops.registry import FuzzOpSpec, fuzz_spec, fuzz_specs

Token = Union[int, str]

# Structural (non-op) step kinds get fixed weights alongside the registered
# op specs.
_STRUCTURAL_WEIGHTS = (
    ("match_cast", 0.6),
    ("if", 0.5),
    ("call", 0.5),
)


class PlanError(Exception):
    """A plan cannot be materialized (e.g. after an invalid shrink edit)."""


class ParamSpec:
    """One function parameter: name, token shape, dtype, and input role."""

    def __init__(self, name: str, shape: Sequence[Token], dtype: str,
                 role: str = "data", index_bound: Optional[Token] = None):
        self.name = name
        self.shape = list(shape)
        self.dtype = dtype
        self.role = role  # "data" | "flag" | "index"
        self.index_bound = index_bound

    def to_json(self) -> dict:
        out = {"name": self.name, "shape": list(self.shape),
               "dtype": self.dtype, "role": self.role}
        if self.index_bound is not None:
            out["index_bound"] = self.index_bound
        return out

    @staticmethod
    def from_json(data: dict) -> "ParamSpec":
        return ParamSpec(data["name"], data["shape"], data["dtype"],
                         data.get("role", "data"), data.get("index_bound"))


class Step:
    """One program step: an op application or a structural construct."""

    def __init__(self, kind: str, op: Optional[str] = None,
                 inputs: Sequence[int] = (), attrs: Optional[dict] = None):
        self.kind = kind
        self.op = op
        self.inputs = list(inputs)
        self.attrs = dict(attrs or {})

    def to_json(self) -> dict:
        out = {"kind": self.kind, "inputs": list(self.inputs)}
        if self.op is not None:
            out["op"] = self.op
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @staticmethod
    def from_json(data: dict) -> "Step":
        return Step(data["kind"], data.get("op"), data.get("inputs", ()),
                    data.get("attrs"))


class SubFunc:
    """A nested callee: simple unary/binary chains over its parameters."""

    def __init__(self, name: str, params: Sequence[ParamSpec],
                 steps: Sequence[Step], output: int):
        self.name = name
        self.params = list(params)
        self.steps = list(steps)
        self.output = output

    def to_json(self) -> dict:
        return {"name": self.name,
                "params": [p.to_json() for p in self.params],
                "steps": [s.to_json() for s in self.steps],
                "output": self.output}

    @staticmethod
    def from_json(data: dict) -> "SubFunc":
        return SubFunc(data["name"],
                       [ParamSpec.from_json(p) for p in data["params"]],
                       [Step.from_json(s) for s in data["steps"]],
                       data["output"])


class Plan:
    """A complete generated program plus the runtime values of its dims."""

    def __init__(self, seed: int, dims: Optional[Dict[str, int]] = None,
                 params: Optional[List[ParamSpec]] = None,
                 steps: Optional[List[Step]] = None,
                 outputs: Optional[List[int]] = None,
                 subfuncs: Optional[List[SubFunc]] = None):
        self.seed = seed
        self.dims = dict(dims or {})
        self.params = list(params or [])
        self.steps = list(steps or [])
        self.outputs = list(outputs or [])
        self.subfuncs = list(subfuncs or [])

    def num_values(self) -> int:
        return len(self.params) + len(self.steps)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "dims": dict(self.dims),
            "params": [p.to_json() for p in self.params],
            "steps": [s.to_json() for s in self.steps],
            "outputs": list(self.outputs),
            "subfuncs": [sf.to_json() for sf in self.subfuncs],
        }

    @staticmethod
    def from_json(data: dict) -> "Plan":
        return Plan(
            data["seed"],
            data.get("dims", {}),
            [ParamSpec.from_json(p) for p in data.get("params", [])],
            [Step.from_json(s) for s in data.get("steps", [])],
            data.get("outputs", []),
            [SubFunc.from_json(sf) for sf in data.get("subfuncs", [])],
        )


# ---------------------------------------------------------------------------
# Tokens <-> symbolic dims
# ---------------------------------------------------------------------------


def token_of_dim(dim) -> Token:
    """Plan token for a resolved symbolic dimension."""
    if sym.is_static(dim):
        return sym.as_static_int(sym.simplify(dim))
    if isinstance(dim, sym.SymVar):
        return dim.name
    return str(sym.simplify(dim))


def _is_simple_token(token: Token) -> bool:
    """Int or bare identifier — usable in signatures and as sub-call dims."""
    return isinstance(token, int) or (isinstance(token, str)
                                      and token.isidentifier())


def eval_token(token: Token, dims: Dict[str, int]) -> int:
    """Concrete runtime value of a dim token under ``dims``."""
    if isinstance(token, int):
        return token
    if token in dims:
        return dims[token]
    ctx = sym.ShapeVarContext()
    expr = sym.parse_dim(token, ctx)
    mapping = {}
    for var in sym.free_vars(expr):
        if var.name not in dims:
            raise PlanError(f"token {token!r} references unknown dim {var.name!r}")
        mapping[var] = sym.IntImm(dims[var.name])
    return sym.as_static_int(sym.simplify(sym.substitute(expr, mapping)))


# ---------------------------------------------------------------------------
# Value bookkeeping
# ---------------------------------------------------------------------------


class ValueInfo:
    """What the generator knows about one program value."""

    def __init__(self, var: Var, kind: str, dtype: Optional[str],
                 tokens: Optional[Tuple[Token, ...]],
                 fields: Optional[List["ValueInfo"]] = None,
                 index_bound: Optional[Token] = None,
                 is_param: bool = False):
        self.var = var
        self.kind = kind  # "tensor" | "tuple" | "shape"
        self.dtype = dtype
        self.tokens = tokens  # None for coarse tensors and tuples
        self.fields = fields
        self.index_bound = index_bound
        self.is_param = is_param

    @property
    def ndim(self) -> Optional[int]:
        return None if self.tokens is None else len(self.tokens)


def _info_from_ann(var: Var, ann, *, index_bound=None, is_param=False) -> ValueInfo:
    if isinstance(ann, TensorAnn):
        tokens = None
        if ann.shape is not None:
            tokens = tuple(token_of_dim(d) for d in ann.shape)
        return ValueInfo(var, "tensor", ann.dtype, tokens,
                         index_bound=index_bound, is_param=is_param)
    if isinstance(ann, TupleAnn):
        fields = [_info_from_ann(var, f) for f in ann.fields]
        return ValueInfo(var, "tuple", None, None, fields=fields,
                         is_param=is_param)
    if isinstance(ann, ShapeAnn):
        tokens = None
        if ann.values is not None:
            tokens = tuple(token_of_dim(v) for v in ann.values)
        return ValueInfo(var, "shape", None, tokens, is_param=is_param)
    return ValueInfo(var, "object", None, None, is_param=is_param)


# ---------------------------------------------------------------------------
# Materializer
# ---------------------------------------------------------------------------


class Materializer:
    """Replays plan steps through a BlockBuilder, tracking value info.

    Used incrementally by the generator (which wraps each ``apply`` in
    try/except to discard invalid candidates) and linearly by
    :func:`build_module`.
    """

    def __init__(self, plan: Plan):
        self.plan = plan
        self.bb = BlockBuilder()
        self.values: List[ValueInfo] = []
        self._df = None
        self._frame = None
        self._fresh_sym = 0
        for sf in plan.subfuncs:
            self.add_subfunc(sf)
        self.open_main()

    # -- function scaffolding ----------------------------------------------

    def open_main(self) -> None:
        params = {p.name: self._param_ann(p) for p in self.plan.params}
        self._frame = self.bb.function("main", params).__enter__()
        for var, spec in zip(self._frame.params, self.plan.params):
            info = _info_from_ann(var, var.ann, index_bound=spec.index_bound,
                                  is_param=True)
            self.values.append(info)

    @staticmethod
    def _param_ann(p: ParamSpec) -> TensorAnn:
        return TensorAnn(tuple(p.shape), p.dtype)

    def add_subfunc(self, sf: SubFunc) -> None:
        bb2 = BlockBuilder(self.bb.mod)
        params = {p.name: self._param_ann(p) for p in sf.params}
        frame = bb2.function(sf.name, params).__enter__()
        try:
            vals = [_info_from_ann(v, v.ann, is_param=True)
                    for v in frame.params]
            df = bb2.dataflow()
            df.__enter__()
            for step in sf.steps:
                spec = fuzz_spec(step.op)
                args = [vals[i].var for i in step.inputs]
                var = bb2.emit(spec.make(*args))
                vals.append(_info_from_ann(var, var.ann))
            out = bb2.emit_output(vals[sf.output].var)
            df.__exit__(None, None, None)
            bb2.emit_func_output(out)
        except Exception:
            bb2._abort_function()
            raise
        frame.__exit__(None, None, None)

    def remove_subfunc(self, name: str) -> None:
        """Undo add_subfunc after a failed call step (generation only)."""
        self.bb.mod.remove(name)

    def finish(self) -> IRModule:
        outs = [self.values[i] for i in self.plan.outputs]
        if self._df is not None:
            for info in outs:
                if isinstance(info.var, DataflowVar):
                    info.var = self.bb.emit_output(info.var)
            self._df.__exit__(None, None, None)
            self._df = None
        if len(outs) == 1:
            result = outs[0].var
        else:
            result = IRTuple([info.var for info in outs])
        self.bb.emit_func_output(result)
        self._frame.__exit__(None, None, None)
        self._frame = None
        return self.bb.get()

    # -- dataflow segments -------------------------------------------------

    def _ensure_df(self) -> None:
        if self._df is None:
            self._df = self.bb.dataflow()
            self._df.__enter__()

    def close_df(self) -> None:
        """Close the open dataflow segment, promoting every live value.

        Promotion (re-emitting DataflowVars as block outputs) keeps all
        values visible to later segments; aliases that turn out unused are
        removed by dead-code elimination in the pipeline.
        """
        if self._df is None:
            return
        for info in self.values:
            if isinstance(info.var, DataflowVar):
                info.var = self.bb.emit_output(info.var)
        self._df.__exit__(None, None, None)
        self._df = None

    # -- dims ---------------------------------------------------------------

    def _dim(self, token: Token) -> sym.PrimExpr:
        return sym.parse_dim(token, self._frame.shape_ctx)

    def _shape_expr(self, tokens: Sequence[Token]) -> ShapeExpr:
        return ShapeExpr([self._dim(t) for t in tokens])

    def fresh_sym_name(self) -> str:
        name = f"fz{self._fresh_sym}"
        self._fresh_sym += 1
        return name

    # -- step application ---------------------------------------------------

    def emit(self, expr) -> ValueInfo:
        self._ensure_df()
        var = self.bb.emit(expr)
        info = _info_from_ann(var, var.ann)
        self.values.append(info)
        return info

    def apply(self, step: Step) -> ValueInfo:
        handler = _APPLIERS.get(step.kind)
        if handler is None:
            raise PlanError(f"unknown step kind {step.kind!r}")
        try:
            return handler(self, step)
        except PlanError:
            raise
        except RecursionError:
            raise
        except Exception as err:
            # Anything the front-end rejects (deduction errors, bad axes,
            # arity mismatches) makes the *plan* invalid, not the compiler.
            raise PlanError(f"step {step.kind}/{step.op}: {err}") from err


def _vals(mat: Materializer, step: Step) -> List[ValueInfo]:
    try:
        return [mat.values[i] for i in step.inputs]
    except IndexError:
        raise PlanError(f"step references missing value {step.inputs}")


def _apply_op(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    args = [v.var for v in _vals(mat, step)]
    return mat.emit(spec.make(*args))


def _apply_reduce(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    (x,) = _vals(mat, step)
    axis = step.attrs.get("axis")
    keepdims = bool(step.attrs.get("keepdims", False))
    return mat.emit(spec.make(x.var, axis=axis, keepdims=keepdims))


def _apply_matmul(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    a, b = _vals(mat, step)
    return mat.emit(spec.make(a.var, b.var,
                              transpose_b=bool(step.attrs.get("transpose_b"))))


def _apply_permute(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    (x,) = _vals(mat, step)
    return mat.emit(spec.make(x.var, tuple(step.attrs["axes"])))


def _apply_axis_op(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    (x,) = _vals(mat, step)
    return mat.emit(spec.make(x.var, step.attrs["axis"]))


def _apply_target_shape(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    vals = _vals(mat, step)
    if "target" in step.attrs:
        target = mat._shape_expr(step.attrs["target"])
    else:
        # reshape-like: the target is a first-class Shape value.
        target = vals[1].var
    return mat.emit(spec.make(vals[0].var, target))


def _apply_concat(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    vals = _vals(mat, step)
    return mat.emit(spec.make([v.var for v in vals], axis=step.attrs["axis"]))


def _apply_split(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    (x,) = _vals(mat, step)
    return mat.emit(spec.make(x.var, step.attrs["sections"],
                              axis=step.attrs["axis"]))


def _apply_take(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    x, idx = _vals(mat, step)
    return mat.emit(spec.make(x.var, idx.var, axis=step.attrs["axis"]))


def _apply_create(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    target = mat._shape_expr(step.attrs["target"])
    return mat.emit(spec.make(target, float(step.attrs["fill"]),
                              step.attrs.get("dtype", "f32")))


def _apply_arange(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    extent = mat._dim(step.attrs["extent"])
    dtype = step.attrs.get("dtype", "i64")
    info = mat.emit(spec.make(extent, 0, dtype))
    if dtype == "i64":
        info.index_bound = step.attrs["extent"]
    return info


def _apply_argmax(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    (x,) = _vals(mat, step)
    info = mat.emit(spec.make(x.var))
    if x.tokens:
        info.index_bound = x.tokens[-1]
    return info


def _apply_attention(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    q, k, v = _vals(mat, step)
    return mat.emit(spec.make(q.var, k.var, v.var,
                              causal=bool(step.attrs.get("causal", True))))


def _apply_paged_attention(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    q, kp, vp, bt, ln, kc, vc = _vals(mat, step)
    return mat.emit(spec.make(q.var, kp.var, vp.var, bt.var, ln.var,
                              kc.var, vc.var))


def _apply_paged_prefill(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    q, kp, vp, bt, mp, kc, vc = _vals(mat, step)
    return mat.emit(spec.make(q.var, kp.var, vp.var, bt.var, mp.var,
                              kc.var, vc.var))


def _apply_paged_verify(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    q, kp, vp, bt, ln, sl, kc, vc = _vals(mat, step)
    return mat.emit(spec.make(q.var, kp.var, vp.var, bt.var, ln.var,
                              sl.var, kc.var, vc.var))


def _apply_paged_cross(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    q, kp, vp, bt, enc = _vals(mat, step)
    return mat.emit(spec.make(q.var, kp.var, vp.var, bt.var, enc.var))


def _apply_ccl(mat: Materializer, step: Step) -> ValueInfo:
    spec = fuzz_spec(step.op)
    (x,) = _vals(mat, step)
    world = int(step.attrs["world"])
    if step.op == "ccl.all_reduce":
        return mat.emit(spec.make(x.var, world))
    if step.op == "ccl.broadcast":
        return mat.emit(spec.make(x.var, world,
                                  int(step.attrs.get("root", 0))))
    return mat.emit(spec.make(x.var, world, int(step.attrs["axis"])))


def _apply_tuple_get(mat: Materializer, step: Step) -> ValueInfo:
    (t,) = _vals(mat, step)
    return mat.emit(TupleGetItem(t.var, step.attrs["index"]))


def _apply_match_cast(mat: Materializer, step: Step) -> ValueInfo:
    (x,) = _vals(mat, step)
    ann = TensorAnn(tuple(step.attrs["shape"]), step.attrs["dtype"])
    mat._ensure_df()
    var = mat.bb.match_cast(x.var, ann)
    info = _info_from_ann(var, var.ann, index_bound=x.index_bound)
    mat.values.append(info)
    return info


def _apply_if(mat: Materializer, step: Step) -> ValueInfo:
    cond, x = _vals(mat, step)
    mat.close_df()
    idx = len(mat.values)

    def branch(op_name: str, tag: str) -> SeqExpr:
        spec = fuzz_spec(op_name)
        call = spec.make(x.var)
        call.ann = deduce_call(call)
        v = Var(f"{tag}{idx}", call.ann)
        seq = SeqExpr([DataflowBlock([VarBinding(v, call)])], v)
        seq.ann = v.ann
        return seq

    expr = If(cond.var,
              branch(step.attrs["then_op"], "tv"),
              branch(step.attrs["else_op"], "ev"))
    var = mat.bb.emit(expr)
    info = _info_from_ann(var, var.ann)
    mat.values.append(info)
    return info


def _apply_call(mat: Materializer, step: Step) -> ValueInfo:
    name = step.attrs["func"]
    if name not in mat.bb.mod:
        raise PlanError(f"call references unknown subfunc {name!r}")
    args = [v.var for v in _vals(mat, step)]
    return mat.emit(Call(GlobalVar(name), args))


_APPLIERS = {
    "unary": _apply_op,
    "binary": _apply_op,
    "matmul": _apply_matmul,
    "reduce": _apply_reduce,
    "permute": _apply_permute,
    "flatten": _apply_op,
    "expand_dims": _apply_axis_op,
    "squeeze": _apply_axis_op,
    "broadcast_to": _apply_target_shape,
    "reshape": _apply_target_shape,
    "concat": _apply_concat,
    "split": _apply_split,
    "take": _apply_take,
    "create": _apply_create,
    "arange": _apply_arange,
    "argmax": _apply_argmax,
    "attention": _apply_attention,
    "paged_attention": _apply_paged_attention,
    "paged_prefill": _apply_paged_prefill,
    "paged_verify": _apply_paged_verify,
    "paged_cross_attention": _apply_paged_cross,
    "ccl": _apply_ccl,
    "datadep": _apply_op,
    "shape_of": _apply_op,
    "tuple_get": _apply_tuple_get,
    "match_cast": _apply_match_cast,
    "if": _apply_if,
    "call": _apply_call,
}


def build_module(plan: Plan) -> IRModule:
    """Materialize ``plan`` into a fresh IRModule (deterministic)."""
    if not plan.outputs:
        raise PlanError("plan has no outputs")
    mat = Materializer(plan)
    for step in plan.steps:
        mat.apply(step)
    for i in plan.outputs:
        if not 0 <= i < len(mat.values):
            raise PlanError(f"output index {i} out of range")
        if mat.values[i].kind == "tuple":
            raise PlanError("tuple values cannot be returned directly")
    return mat.finish()


def value_infos(plan: Plan) -> List[ValueInfo]:
    """Per-value metadata (tokens, dtype, kind) from a dry materialization."""
    mat = Materializer(plan)
    for step in plan.steps:
        mat.apply(step)
    return mat.values


# ---------------------------------------------------------------------------
# Runtime inputs
# ---------------------------------------------------------------------------


def make_inputs(plan: Plan):
    """Deterministic numpy inputs for ``plan`` (in parameter order)."""
    import numpy as np

    rng = np.random.default_rng(plan.seed + 0x5EED)
    arrays = []
    for p in plan.params:
        shape = tuple(eval_token(t, plan.dims) for t in p.shape)
        if p.role == "flag":
            arrays.append(np.bool_(rng.random() < 0.5))
        elif p.role == "index":
            bound = max(1, eval_token(p.index_bound, plan.dims))
            arrays.append(rng.integers(0, bound, size=shape, dtype=np.int64))
        elif p.dtype == "i64":
            arrays.append(rng.integers(0, 4, size=shape, dtype=np.int64))
        else:
            arrays.append(rng.standard_normal(shape).astype(np.float32))
    return arrays


# ---------------------------------------------------------------------------
# Generation strategies
# ---------------------------------------------------------------------------


def _f32_tensors(mat: Materializer, *, min_ndim: int = 1,
                 max_ndim: int = 6) -> List[int]:
    out = []
    for i, v in enumerate(mat.values):
        if (v.kind == "tensor" and v.dtype == "f32" and v.tokens is not None
                and min_ndim <= len(v.tokens) <= max_ndim):
            out.append(i)
    return out


def _tok_one(token: Token) -> bool:
    return token == 1


def _broadcastable(sa: Sequence[Token], sb: Sequence[Token]) -> bool:
    for a, b in zip(reversed(sa), reversed(sb)):
        if a != b and not _tok_one(a) and not _tok_one(b):
            return False
    return True


def _gen_unary(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat)
    if not cands:
        return None
    return Step("unary", spec.name, [rng.choice(cands)])


def _gen_binary(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat)
    if not cands:
        return None
    a = rng.choice(cands)
    sa = mat.values[a].tokens
    mates = [i for i in cands if _broadcastable(sa, mat.values[i].tokens)]
    if not mates:
        return None
    return Step("binary", spec.name, [a, rng.choice(mates)])


def _gen_matmul(rng, mat, plan, spec) -> Optional[Step]:
    lhs = _f32_tensors(mat, min_ndim=2, max_ndim=3)
    if not lhs:
        return None
    a = rng.choice(lhs)
    sa = mat.values[a].tokens
    pairs = []
    for i in _f32_tensors(mat, min_ndim=1, max_ndim=3):
        sb = mat.values[i].tokens
        if len(sb) == 1:
            if sb[0] == sa[-1]:
                pairs.append((i, False))
            continue
        if not _broadcastable(sa[:-2], sb[:-2]):
            continue
        if sb[-2] == sa[-1]:
            pairs.append((i, False))
        if sb[-1] == sa[-1]:
            pairs.append((i, True))
    if not pairs:
        return None
    b, transpose_b = pairs[rng.randrange(len(pairs))]
    attrs = {"transpose_b": True} if transpose_b else {}
    return Step("matmul", spec.name, [a, b], attrs)


def _gen_reduce(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat)
    if not cands:
        return None
    x = rng.choice(cands)
    ndim = len(mat.values[x].tokens)
    axis = rng.choice([None] + list(range(ndim)))
    # Rank-0 results stay out of the DPS path: keep at least one dim.
    keepdims = True if (axis is None or ndim == 1) else rng.random() < 0.3
    return Step("reduce", spec.name, [x],
                {"axis": axis, "keepdims": keepdims})


def _gen_permute(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat, min_ndim=2)
    if not cands:
        return None
    x = rng.choice(cands)
    axes = list(range(len(mat.values[x].tokens)))
    rng.shuffle(axes)
    return Step("permute", spec.name, [x], {"axes": axes})


def _gen_flatten(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat, min_ndim=2)
    if not cands:
        return None
    return Step("flatten", spec.name, [rng.choice(cands)])


def _gen_expand(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat, max_ndim=3)
    if not cands:
        return None
    x = rng.choice(cands)
    axis = rng.randrange(len(mat.values[x].tokens) + 1)
    return Step("expand_dims", spec.name, [x], {"axis": axis})


def _gen_squeeze(rng, mat, plan, spec) -> Optional[Step]:
    pairs = []
    for i in _f32_tensors(mat, min_ndim=2):
        for axis, t in enumerate(mat.values[i].tokens):
            if _tok_one(t):
                pairs.append((i, axis))
    if not pairs:
        return None
    x, axis = pairs[rng.randrange(len(pairs))]
    return Step("squeeze", spec.name, [x], {"axis": axis})


def _dim_pool(plan: Plan) -> List[Token]:
    # Only symbolic names actually bound by a parameter shape are in scope
    # for fresh shapes (create/arange/broadcast targets); plan.dims may
    # name variables that no parameter ended up using.
    bound = {t for p in plan.params for t in p.shape
             if isinstance(t, str) and t.isidentifier()}
    pool: List[Token] = sorted(bound)
    pool.extend([2, 3, 4])
    return pool


def _gen_broadcast(rng, mat, plan, spec) -> Optional[Step]:
    cands = [i for i in _f32_tensors(mat)
             if any(_tok_one(t) for t in mat.values[i].tokens)]
    if not cands:
        return None
    x = rng.choice(cands)
    pool = _dim_pool(plan)
    target = [rng.choice(pool) if (_tok_one(t) and rng.random() < 0.8) else t
              for t in mat.values[x].tokens]
    return Step("broadcast_to", spec.name, [x], {"target": target})


def _gen_reshape(rng, mat, plan, spec) -> Optional[Step]:
    merges, splits = [], []
    for i in _f32_tensors(mat, min_ndim=1, max_ndim=3):
        toks = mat.values[i].tokens
        for d in range(len(toks) - 1):
            if _is_simple_token(toks[d]) and _is_simple_token(toks[d + 1]):
                merges.append((i, d))
        for d, t in enumerate(toks):
            if isinstance(t, int):
                for f in (2, 3, 4):
                    if t % f == 0 and t > f:
                        splits.append((i, d, f))
    choices = [("merge", m) for m in merges] + [("split", s) for s in splits]
    if not choices:
        return None
    mode, payload = choices[rng.randrange(len(choices))]
    if mode == "merge":
        i, d = payload
        toks = list(mat.values[i].tokens)
        a, b = toks[d], toks[d + 1]
        if isinstance(a, int) and isinstance(b, int):
            merged: Token = a * b
        else:
            merged = f"{a} * {b}"
        target = toks[:d] + [merged] + toks[d + 2:]
    else:
        i, d, f = payload
        toks = list(mat.values[i].tokens)
        target = toks[:d] + [f, toks[d] // f] + toks[d + 1:]
    return Step("reshape", spec.name, [i], {"target": target})


def _gen_reshape_like(rng, mat, plan, spec) -> Optional[Step]:
    shapes = [i for i, v in enumerate(mat.values)
              if v.kind == "shape" and v.tokens is not None]
    if not shapes:
        return None
    s = rng.choice(shapes)
    stoks = mat.values[s].tokens
    mates = [i for i in _f32_tensors(mat) if mat.values[i].tokens == stoks]
    if not mates:
        return None
    return Step("reshape", spec.name, [rng.choice(mates), s])


def _gen_concat(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat, max_ndim=3)
    if not cands:
        return None
    a = rng.choice(cands)
    toks = mat.values[a].tokens
    mates = [i for i in cands if mat.values[i].tokens == toks]
    count = min(len(mates), rng.choice([2, 2, 3]))
    picked = [a] + [rng.choice(mates) for _ in range(count - 1)]
    axis = rng.randrange(len(toks))
    return Step("concat", spec.name, picked, {"axis": axis})


def _gen_split(rng, mat, plan, spec) -> Optional[Step]:
    options = []
    for i in _f32_tensors(mat, max_ndim=3):
        for axis, t in enumerate(mat.values[i].tokens):
            if isinstance(t, int):
                for sections in (2, 3):
                    if t % sections == 0 and t >= sections * 1 and t > 1:
                        options.append((i, axis, sections))
    if not options:
        return None
    i, axis, sections = options[rng.randrange(len(options))]
    return Step("split", spec.name, [i], {"sections": sections, "axis": axis})


def _gen_take(rng, mat, plan, spec) -> Optional[Step]:
    indices = [i for i, v in enumerate(mat.values)
               if v.kind == "tensor" and v.dtype == "i64"
               and v.tokens is not None and len(v.tokens) == 1
               and v.index_bound is not None]
    if not indices:
        return None
    options = []
    for x in _f32_tensors(mat, max_ndim=3):
        toks = mat.values[x].tokens
        for axis, t in enumerate(toks):
            for idx in indices:
                bound = mat.values[idx].index_bound
                if bound == t or (isinstance(bound, int) and isinstance(t, int)
                                  and bound <= t):
                    options.append((x, idx, axis))
    if not options:
        return None
    x, idx, axis = options[rng.randrange(len(options))]
    return Step("take", spec.name, [x, idx], {"axis": axis})


def _gen_create(rng, mat, plan, spec) -> Optional[Step]:
    pool = _dim_pool(plan)
    ndim = rng.choice([1, 2])
    target = [rng.choice(pool) for _ in range(ndim)]
    fill = rng.choice([0.0, 1.0, round(rng.uniform(-2.0, 2.0), 3)])
    return Step("create", spec.name, [],
                {"target": target, "fill": fill, "dtype": "f32"})


def _gen_arange(rng, mat, plan, spec) -> Optional[Step]:
    pool = [t for t in _dim_pool(plan) if t != 1]
    extent = rng.choice(pool)
    dtype = "i64" if rng.random() < 0.7 else "f32"
    return Step("arange", spec.name, [], {"extent": extent, "dtype": dtype})


def _gen_argmax(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat)
    if not cands:
        return None
    return Step("argmax", spec.name, [rng.choice(cands)])


def _gen_attention(rng, mat, plan, spec) -> Optional[Step]:
    attn = getattr(mat, "_attn_params", None)
    if not attn:
        return None
    q, k, v = attn
    return Step("attention", spec.name, [q, k, v],
                {"causal": rng.random() < 0.7})


def _gen_paged_attention(rng, mat, plan, spec) -> Optional[Step]:
    paged = getattr(mat, "_paged_params", None)
    if not paged:
        return None
    return Step("paged_attention", spec.name, list(paged))


def _gen_paged_verify(rng, mat, plan, spec) -> Optional[Step]:
    paged = getattr(mat, "_paged_verify_params", None)
    if not paged:
        return None
    return Step("paged_verify", spec.name, list(paged))


def _gen_paged_cross(rng, mat, plan, spec) -> Optional[Step]:
    paged = getattr(mat, "_paged_cross_params", None)
    if not paged:
        return None
    return Step("paged_cross_attention", spec.name, list(paged))


def _gen_paged_prefill(rng, mat, plan, spec) -> Optional[Step]:
    paged = getattr(mat, "_paged_prefill_params", None)
    if not paged:
        return None
    return Step("paged_prefill", spec.name, list(paged))


def _gen_ccl(rng, mat, plan, spec) -> Optional[Step]:
    # Collectives run in single-VM replica semantics here (no mesh), so
    # they are ordinary total functions the oracle can compare.
    cands = _f32_tensors(mat)
    if not cands:
        return None
    x = rng.choice(cands)
    world = rng.choice([2, 2, 3, 4])
    if spec.name == "ccl.all_reduce":
        return Step("ccl", spec.name, [x], {"world": world})
    if spec.name == "ccl.broadcast":
        return Step("ccl", spec.name, [x],
                    {"world": world, "root": rng.randrange(world)})
    toks = mat.values[x].tokens
    if spec.name == "ccl.all_gather":
        return Step("ccl", spec.name, [x],
                    {"world": world, "axis": rng.randrange(len(toks))})
    # reduce_scatter: the scattered dim must divide evenly at runtime —
    # checked against the plan's concrete dim bindings.  Dims the plan
    # cannot evaluate (fresh match_cast syms) are out of bounds.
    def divides(t):
        try:
            return eval_token(t, plan.dims) % world == 0
        except PlanError:
            return False

    axes = [d for d, t in enumerate(toks) if divides(t)]
    if not axes:
        return None
    return Step("ccl", spec.name, [x],
                {"world": world, "axis": rng.choice(axes)})


def _gen_datadep(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat)
    if not cands:
        return None
    return Step("datadep", spec.name, [rng.choice(cands)])


def _gen_shape_of(rng, mat, plan, spec) -> Optional[Step]:
    cands = _f32_tensors(mat)
    if not cands:
        return None
    return Step("shape_of", spec.name, [rng.choice(cands)])


def _gen_match_cast(rng, mat, plan, spec_unused) -> Optional[Step]:
    coarse = [i for i, v in enumerate(mat.values)
              if v.kind == "tensor" and v.tokens is None]
    if coarse and rng.random() < 0.8:
        x = rng.choice(coarse)
        info = mat.values[x]
        return Step("match_cast", None, [x],
                    {"shape": [mat.fresh_sym_name()], "dtype": info.dtype})
    known = _f32_tensors(mat)
    if not known:
        return None
    x = rng.choice(known)
    toks = list(mat.values[x].tokens)
    if rng.random() < 0.5:
        # Rebind one dimension to a fresh symbolic variable: downstream
        # allocations lose their upper bound and fall back to pool storage.
        d = rng.randrange(len(toks))
        toks[d] = mat.fresh_sym_name()
    return Step("match_cast", None, [x],
                {"shape": toks, "dtype": mat.values[x].dtype})


def _shape_preserving_unary_names() -> List[str]:
    names = [s.name for s in fuzz_specs("unary") if not s.meta.get("domain")]
    return names


def _gen_if(rng, mat, plan, spec_unused) -> Optional[Step]:
    flag = getattr(mat, "_flag_param", None)
    if flag is None:
        return None
    cands = _f32_tensors(mat)
    if not cands:
        return None
    names = _shape_preserving_unary_names()
    then_op = rng.choice(names)
    else_op = rng.choice([n for n in names if n != then_op] or names)
    return Step("if", None, [flag, rng.choice(cands)],
                {"then_op": then_op, "else_op": else_op})


def _gen_call(rng, mat, plan, spec_unused) -> Optional[Step]:
    if len(plan.subfuncs) >= 2:
        return None
    cands = [i for i in _f32_tensors(mat, max_ndim=3)
             if all(_is_simple_token(t) for t in mat.values[i].tokens)]
    if not cands:
        return None
    nargs = 1 if len(cands) == 1 or rng.random() < 0.5 else 2
    args = [rng.choice(cands)]
    if nargs == 2:
        toks = mat.values[args[0]].tokens
        mates = [i for i in cands if mat.values[i].tokens == toks]
        if mates:
            args.append(rng.choice(mates))
    name = f"sub{len(plan.subfuncs)}"
    params = [ParamSpec(f"a{j}", list(mat.values[i].tokens), "f32")
              for j, i in enumerate(args)]
    unary_names = _shape_preserving_unary_names()
    binary_names = [s.name for s in fuzz_specs("binary")
                    if s.name in ("add", "multiply", "maximum", "subtract")]
    steps: List[Step] = []
    nvals = len(params)
    for _ in range(rng.randint(2, 4)):
        if nvals >= 2 and rng.random() < 0.4:
            steps.append(Step("binary", rng.choice(binary_names),
                              [rng.randrange(nvals), rng.randrange(nvals)]))
        else:
            steps.append(Step("unary", rng.choice(unary_names),
                              [rng.randrange(nvals)]))
        nvals += 1
    sf = SubFunc(name, params, steps, nvals - 1)
    return Step("call", None, args, {"func": name, "_subfunc": sf.to_json()})


_GENERATORS = {
    "unary": _gen_unary,
    "binary": _gen_binary,
    "matmul": _gen_matmul,
    "reduce": _gen_reduce,
    "permute": _gen_permute,
    "flatten": _gen_flatten,
    "expand_dims": _gen_expand,
    "squeeze": _gen_squeeze,
    "broadcast_to": _gen_broadcast,
    "reshape": _gen_reshape,
    "concat": _gen_concat,
    "split": _gen_split,
    "take": _gen_take,
    "create": _gen_create,
    "arange": _gen_arange,
    "argmax": _gen_argmax,
    "attention": _gen_attention,
    "paged_attention": _gen_paged_attention,
    "paged_prefill": _gen_paged_prefill,
    "paged_verify": _gen_paged_verify,
    "paged_cross_attention": _gen_paged_cross,
    "ccl": _gen_ccl,
    "datadep": _gen_datadep,
    "shape_of": _gen_shape_of,
    "match_cast": _gen_match_cast,
    "if": _gen_if,
    "call": _gen_call,
}


def _weighted_pool() -> List[Tuple[str, Optional[FuzzOpSpec], float]]:
    pool: List[Tuple[str, Optional[FuzzOpSpec], float]] = []
    for spec in fuzz_specs():
        if spec.kind in _GENERATORS:
            pool.append((spec.kind, spec, spec.weight))
    # The reshape spec doubles as the reshape-from-Shape-value strategy.
    for spec in fuzz_specs("reshape"):
        pool.append(("reshape_like", spec, 0.4))
    for kind, weight in _STRUCTURAL_WEIGHTS:
        pool.append((kind, None, weight))
    return pool


def _pick(rng: random.Random, pool) -> Tuple[str, Optional[FuzzOpSpec]]:
    total = sum(w for _, _, w in pool)
    r = rng.random() * total
    acc = 0.0
    for kind, spec, w in pool:
        acc += w
        if r < acc:
            return kind, spec
    return pool[-1][0], pool[-1][1]


# ---------------------------------------------------------------------------
# generate()
# ---------------------------------------------------------------------------


def generate(seed: int, *, max_steps: Optional[int] = None) -> Plan:
    """Generate a random, materializable plan from a single integer."""
    rng = random.Random(seed)
    plan = Plan(seed)

    n_sym = rng.randint(1, 2)
    for name in ["n", "m"][:n_sym]:
        plan.dims[name] = rng.randint(2, 6)
    sym_names = sorted(plan.dims)
    token_pool: List[Token] = list(sym_names) + [1, 2, 3, 4, 4, 6]

    for i in range(rng.randint(2, 3)):
        shape = [rng.choice(token_pool) for _ in range(rng.randint(1, 3))]
        plan.params.append(ParamSpec(f"p{i}", shape, "f32"))

    flag_idx = None
    if rng.random() < 0.4:
        flag_idx = len(plan.params)
        plan.params.append(ParamSpec("flag", [], "bool", role="flag"))

    if rng.random() < 0.5:
        bound = rng.choice([t for t in token_pool if t != 1])
        plan.params.append(ParamSpec("idx", [rng.randint(1, 3)], "i64",
                                     role="index", index_bound=bound))

    attn_idx = None
    if rng.random() < 0.3:
        b = rng.choice([1, 2])
        s = rng.choice([2, 3] + sym_names)
        m = rng.choice([3, 4] + sym_names)
        h_kv = rng.choice([1, 2])
        h = h_kv * rng.choice([1, 2])
        d = rng.choice([2, 4])
        base = len(plan.params)
        plan.params.append(ParamSpec("q", [b, s, h, d], "f32"))
        plan.params.append(ParamSpec("k", [b, m, h_kv, d], "f32"))
        plan.params.append(ParamSpec("v", [b, m, h_kv, d], "f32"))
        attn_idx = (base, base + 1, base + 2)

    paged_idx = None
    paged_prefill_idx = None
    if rng.random() < 0.25:
        b = rng.choice([1, 2])
        s = rng.choice([1, 2])
        h_kv = rng.choice([1, 2])
        h = h_kv * rng.choice([1, 2])
        d = rng.choice([2, 4])
        page = 2
        w = rng.choice([1, 2])
        p = rng.choice([2, 3])
        # Past length for paged_prefill; its gather touches every column
        # of the (mpast + s)-wide context, so the block table must cover
        # ceil((mpast + s) / page) pages.
        mpast = rng.choice([1, 2])
        w = max(w, -(-(mpast + s) // page))
        base = len(plan.params)
        plan.params.append(ParamSpec("pq", [b, s, h, d], "f32"))
        plan.params.append(ParamSpec("kp", [p, page, h_kv, d], "f32"))
        plan.params.append(ParamSpec("vp", [p, page, h_kv, d], "f32"))
        plan.params.append(ParamSpec("bt", [b, w], "i64",
                                     role="index", index_bound=p))
        plan.params.append(ParamSpec("ln", [b], "i64",
                                     role="index", index_bound=w * page + 1))
        plan.params.append(ParamSpec("kc", [b, s, h_kv, d], "f32"))
        plan.params.append(ParamSpec("vc", [b, s, h_kv, d], "f32"))
        # Anchor for paged_prefill's past length (only its shape matters).
        plan.params.append(ParamSpec("mp", [mpast], "i64",
                                     role="index", index_bound=p))
        # Ragged speculative widths for paged_verify: values in [0, s],
        # so plans exercise fully-padded (sl == 0) sequences too.
        plan.params.append(ParamSpec("sl", [b], "i64",
                                     role="index", index_bound=s + 1))
        paged_idx = tuple(range(base, base + 7))
        paged_prefill_idx = (base, base + 1, base + 2, base + 3, base + 7,
                             base + 5, base + 6)
        # Verify reuses the decode pool params plus the ragged widths.
        paged_verify_idx = (base, base + 1, base + 2, base + 3, base + 4,
                            base + 8, base + 5, base + 6)
        # Cross-attention reuses the pool params; mp's shape anchors the
        # encoder-context dim t = mpast <= w * page (table covers it).
        paged_cross_idx = (base, base + 1, base + 2, base + 3, base + 7)
    else:
        paged_cross_idx = None
        paged_verify_idx = None

    mat = Materializer(plan)
    mat._flag_param = flag_idx
    mat._attn_params = attn_idx
    mat._paged_params = paged_idx
    mat._paged_prefill_params = paged_prefill_idx
    mat._paged_verify_params = paged_verify_idx
    mat._paged_cross_params = paged_cross_idx

    pool = _weighted_pool()
    target = max_steps if max_steps is not None else rng.randint(4, 12)
    queued: List[Step] = []
    attempts = 0
    while len(plan.steps) < target and attempts < target * 12:
        if queued:
            step = queued.pop(0)
        else:
            kind, spec = _pick(rng, pool)
            gen = _GENERATORS.get(kind) or _gen_reshape_like
            step = gen(rng, mat, plan, spec)
            if step is None:
                attempts += 1
                continue
        subfunc_json = step.attrs.pop("_subfunc", None)
        sf = SubFunc.from_json(subfunc_json) if subfunc_json else None
        if sf is not None:
            try:
                mat.add_subfunc(sf)
            except Exception:
                attempts += 1
                continue
        try:
            info = mat.apply(step)
        except PlanError:
            if sf is not None:
                mat.remove_subfunc(sf.name)
            attempts += 1
            continue
        if sf is not None:
            plan.subfuncs.append(sf)
        plan.steps.append(step)
        value_idx = len(mat.values) - 1
        if info.kind == "tuple" and info.fields:
            picks = [j for j in range(len(info.fields))
                     if rng.random() < 0.6] or [0]
            for j in picks:
                queued.append(Step("tuple_get", None, [value_idx],
                                   {"index": j}))
        elif info.kind == "tensor" and info.tokens is None:
            if rng.random() < 0.85:
                queued.append(Step("match_cast", None, [value_idx],
                                   {"shape": [mat.fresh_sym_name()],
                                    "dtype": info.dtype}))

    if not plan.steps:
        # Degenerate fallback: a single unary op on the first parameter.
        step = Step("unary", "relu", [0])
        mat.apply(step)
        plan.steps.append(step)

    n_params = len(plan.params)
    candidates = [i for i in range(n_params, len(mat.values))
                  if mat.values[i].kind in ("tensor", "shape")]
    outputs = [candidates[-1]] if candidates else [0]
    extras = [i for i in candidates[:-1] if rng.random() < 0.25]
    for i in extras[:2]:
        if i not in outputs:
            outputs.append(i)
    plan.outputs = sorted(outputs)
    return plan
