"""Replayable fuzz repro files.

A repro file is a single JSON document carrying the *plan* (the ground
truth — everything rebuilds from it), the original failure classification,
and the printed IR of the materialized module.  The printed IR is advisory
for humans reading the corpus, but it doubles as a printer round-trip
check: :func:`replay_repro` re-materializes the plan and requires the
fresh printout to match the stored text byte-for-byte, so any printer or
builder nondeterminism trips the corpus immediately.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from ..core.printer import format_module
from .gen import Plan, build_module
from .oracle import FuzzFailure

FORMAT = "repro-fuzz/1"


def write_repro(out_dir: str, plan: Plan, failure: FuzzFailure,
                note: Optional[str] = None) -> str:
    """Write a replayable repro file; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    doc = {
        "format": FORMAT,
        "seed": plan.seed,
        "failure": {
            "kind": failure.kind,
            "config": failure.config,
            "detail": failure.detail,
        },
        "plan": plan.to_json(),
        "ir": format_module(build_module(plan)),
    }
    if note:
        doc["note"] = note
    path = os.path.join(out_dir, f"seed{plan.seed}-{failure.kind}.json")
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_repro(path: str) -> Tuple[Plan, Dict]:
    """Load a repro file; returns (plan, full document)."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("format") != FORMAT:
        raise ValueError(f"{path}: unknown repro format {doc.get('format')!r}")
    return Plan.from_json(doc["plan"]), doc


def replay_repro(path: str) -> Optional[FuzzFailure]:
    """Rebuild a repro's module, check the printer round-trip, re-run.

    Returns the oracle failure if the repro still reproduces, or None if
    the underlying bug has been fixed.  Raises on printer drift (the stored
    IR text no longer matches a fresh materialization).
    """
    plan, doc = load_repro(path)
    printed = format_module(build_module(plan))
    if printed != doc["ir"]:
        raise AssertionError(
            f"{path}: stored IR no longer matches the rebuilt module "
            "(printer or builder drift)"
        )
    from .shrink import failure_of

    return failure_of(plan)
