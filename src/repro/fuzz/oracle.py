"""Differential oracle: one plan, every pipeline ablation, same answers.

For a generated :class:`~repro.fuzz.gen.Plan` the oracle compiles a fresh
materialization under every configuration in :func:`config_matrix` — each
``enable_*`` flag toggled off the full pipeline (``no-<flag>``), each flag
alone on top of the unoptimized baseline (``only-<flag>``), plus
``full-off`` and ``full-on`` — and runs all of them on the VM with the
plan's deterministic inputs.  The ``full-off`` execution is the reference;
every other configuration must agree tensor-by-tensor (float tolerance,
positional NaN/Inf, exact int/bool/shape equality).

Three further invariants ride along:

* a :class:`~repro.transform.WellFormedVerifier` instrument asserts
  well-formedness after *every* pass in every configuration;
* the ``full-on`` executable runs twice and must reproduce itself exactly
  (CUDA-graph replay must not capture stale state);
* the memory planner's Algorithm-3 invariant — two simultaneously-live
  tensors never share a storage — is checked structurally on the lowered
  module (:func:`aliasing_violations`).

Any violation raises :class:`FuzzFailure`, which names the configuration
and carries a human-readable detail string for the shrinker and corpus.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import transform
from ..core import Call, Function, If, SeqExpr
from ..core import Tuple as IRTuple
from ..core import TupleGetItem, Var
from ..runtime import NDArray, TEST_DEVICE, VirtualMachine, compare_values
from ..transform import (
    PassContext,
    WellFormedVerifier,
    alloc_tensor_from_storage_op,
)
from .gen import Plan, PlanError, build_module, make_inputs

FLAGS = ("library_dispatch", "fusion", "memory_planning", "cuda_graph",
         "autotuning")


class FuzzFailure(Exception):
    """A differential-testing invariant broke for one configuration.

    ``kind`` is one of: ``compile-error``, ``ill-formed``, ``runtime-error``,
    ``divergence``, ``replay-divergence``, ``aliasing``.
    """

    def __init__(self, kind: str, config: str, detail: str):
        self.kind = kind
        self.config = config
        self.detail = detail
        super().__init__(f"[{kind} @ {config}] {detail}")


def config_matrix() -> List[Tuple[str, Dict[str, bool]]]:
    """All pipeline ablations, reference (``full-off``) first."""
    configs: List[Tuple[str, Dict[str, bool]]] = [
        ("full-off", {f: False for f in FLAGS}),
        ("full-on", {f: True for f in FLAGS}),
    ]
    for flag in FLAGS:
        ablated = {f: True for f in FLAGS}
        ablated[flag] = False
        configs.append((f"no-{flag}", ablated))
        solo = {f: False for f in FLAGS}
        solo[flag] = True
        configs.append((f"only-{flag}", solo))
    return configs


def _compile(plan: Plan, config: str, flags: Dict[str, bool]):
    try:
        mod = build_module(plan)
    except PlanError:
        # An invalid *plan* (e.g. a bad shrink edit) is not a compiler bug.
        raise
    except Exception as err:
        raise FuzzFailure("compile-error", config,
                          f"build_module: {type(err).__name__}: {err}")
    kwargs = {f"enable_{f}": v for f, v in flags.items()}
    try:
        return transform.build(
            mod, TEST_DEVICE,
            sym_var_upper_bounds=dict(plan.dims),
            instruments=[WellFormedVerifier()],
            **kwargs,
        )
    except Exception as err:
        text = f"{type(err).__name__}: {err}"
        kind = "ill-formed" if "ill-formed" in str(err) else "compile-error"
        raise FuzzFailure(kind, config, text)


def _localized(diff: str, ref_exe, exe, inputs) -> str:
    """Append a first-divergent-op location to a divergence detail.

    Localization replays both executables with per-op output capture
    (:mod:`repro.fuzz.localize`); it is strictly best-effort and must
    never mask the original diff, so every error is swallowed.
    """
    try:
        from .localize import first_divergent_op

        where = first_divergent_op(ref_exe, exe, inputs)
    except Exception:
        return diff
    return f"{diff}; {where}" if where else diff


def _run(exe, config: str, inputs):
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    args = [NDArray.from_numpy(np.asarray(a)) for a in inputs]
    try:
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            return vm.run("main", *args)
    except Exception as err:
        raise FuzzFailure("runtime-error", config,
                          f"{type(err).__name__}: {err}")


def run_plan(plan: Plan, *, check_aliasing: bool = True) -> Dict[str, object]:
    """Run every configuration; raise :class:`FuzzFailure` on divergence.

    Returns a small report (``configs``: names run, ``leaves``: number of
    result leaves in the reference output) for tests that want evidence the
    oracle exercised the matrix.
    """
    inputs = make_inputs(plan)
    reference = None
    ref_exe = None
    configs_run = []
    for config, flags in config_matrix():
        exe = _compile(plan, config, flags)
        out = _run(exe, config, inputs)
        if reference is None:
            reference = out
            ref_exe = exe
        else:
            diff = compare_values(reference, out)
            if diff is not None:
                raise FuzzFailure(
                    "divergence", config,
                    _localized(diff, ref_exe, exe, inputs))
        if config == "full-on":
            again = _run(exe, config + " (replay)", inputs)
            diff = compare_values(out, again, rtol=0.0, atol=0.0)
            if diff is not None:
                raise FuzzFailure("replay-divergence", config, diff)
        configs_run.append(config)

    if check_aliasing:
        violations = plan_aliasing_violations(plan)
        if violations:
            raise FuzzFailure("aliasing", "memory-planning", violations[0])

    from ..runtime import flatten_values

    return {"configs": configs_run, "leaves": len(flatten_values(reference))}


# ---------------------------------------------------------------------------
# Algorithm-3 invariant: no two simultaneously-live tensors share storage
# ---------------------------------------------------------------------------


def _scan_uses(expr, idx: int, last_use: Dict[int, int]) -> None:
    if isinstance(expr, Var):
        last_use[expr._id] = idx
    elif isinstance(expr, Call):
        for a in expr.args:
            _scan_uses(a, idx, last_use)
    elif isinstance(expr, IRTuple):
        for f in expr.fields:
            _scan_uses(f, idx, last_use)
    elif isinstance(expr, TupleGetItem):
        _scan_uses(expr.tuple_value, idx, last_use)
    elif isinstance(expr, If):
        _scan_uses(expr.cond, idx, last_use)
        _scan_uses(expr.true_branch, idx, last_use)
        _scan_uses(expr.false_branch, idx, last_use)
    elif isinstance(expr, SeqExpr):
        for block in expr.blocks:
            for binding in block.bindings:
                _scan_uses(binding.value, idx, last_use)
        _scan_uses(expr.body, idx, last_use)


def aliasing_violations(func: Function) -> List[str]:
    """Pairs of overlapping-live tensors sharing a storage, as messages."""
    bindings = [b for block in func.body.blocks for b in block.bindings]
    storage_of: Dict[int, int] = {}
    born_at: Dict[int, int] = {}
    names: Dict[int, str] = {}
    for idx, binding in enumerate(bindings):
        value = binding.value
        if isinstance(value, Call) and value.op is alloc_tensor_from_storage_op:
            storage_of[binding.var._id] = value.args[0]._id
            born_at[binding.var._id] = idx
            names[binding.var._id] = binding.var.name_hint

    last_use: Dict[int, int] = {}
    for idx, binding in enumerate(bindings):
        _scan_uses(binding.value, idx, last_use)
    _scan_uses(func.body.body, len(bindings) + 1, last_use)

    out: List[str] = []
    tensors = list(storage_of)
    for i, t1 in enumerate(tensors):
        for t2 in tensors[i + 1:]:
            if storage_of[t1] != storage_of[t2]:
                continue
            live1 = (born_at[t1], last_use.get(t1, born_at[t1]))
            live2 = (born_at[t2], last_use.get(t2, born_at[t2]))
            if not (live1[1] <= live2[0] or live2[1] <= live1[0]):
                out.append(
                    f"tensors {names[t1]!r} (live {live1}) and {names[t2]!r} "
                    f"(live {live2}) share a storage"
                )
    return out


def plan_aliasing_violations(plan: Plan) -> List[str]:
    """Aliasing violations across all Relax functions of the planned module."""
    try:
        mod = build_module(plan)
    except PlanError:
        raise
    except Exception as err:
        raise FuzzFailure("compile-error", "memory-planning",
                          f"build_module: {type(err).__name__}: {err}")
    ctx = PassContext(device=TEST_DEVICE,
                      sym_var_upper_bounds=dict(plan.dims))
    try:
        lowered = transform.optimize(mod, ctx)
    except Exception as err:
        raise FuzzFailure("compile-error", "memory-planning",
                          f"optimize: {type(err).__name__}: {err}")
    out: List[str] = []
    for name, func in lowered.functions():
        if isinstance(func, Function):
            out.extend(f"{name}: {v}" for v in aliasing_violations(func))
    return out
