"""Composable fusion customization (paper §4.2, last paragraph).

"We can apply a pass to fuse new sets of patterns that are not covered by
FuseOps (e.g., fusing all sub-operators in scaled dot-product attention),
and use FuseOps for the remainder.  FuseTensorIR can then transform the
fused subgraph function from both customized and standard fusion."

This example builds attention from its *sub-operators* (matmul, mask add,
softmax, matmul — softmax is Opaque, so standard FuseOps will never absorb
it), registers the custom pattern, lets FuseOps handle everything else,
and shows the whole block collapsing to a single kernel.

Run:  python examples/composable_fusion.py
"""

import numpy as np

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const, format_function
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import FuseByPattern, PassContext

M, D = 6, 8


def build_module():
    mask = np.where(np.tril(np.ones((M, M))), 0.0, -1e9).astype(np.float32)
    bb = BlockBuilder()
    with bb.function(
        "attn",
        {
            "q": TensorAnn((M, D), "f32"),
            "k_t": TensorAnn((D, M), "f32"),
            "v": TensorAnn((M, D), "f32"),
        },
    ) as frame:
        q, k_t, v = frame.params
        with bb.dataflow():
            scores = bb.emit(ops.matmul(q, k_t))
            masked = bb.emit(ops.add(scores, const(mask)))
            probs = bb.emit(ops.softmax(masked))
            out = bb.emit(ops.matmul(probs, v))
            # ...and a standard-fusable epilogue for FuseOps to pick up.
            out = bb.emit(ops.relu(out))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get(), mask


def main():
    mod, mask = build_module()
    ctx = PassContext(device=TEST_DEVICE, enable_library_dispatch=False)

    mod = transform.LegalizeOps()(mod, ctx)
    mod = transform.AnnotatePatternKind()(mod, ctx)

    print("=" * 72)
    print("Custom pattern first: matmul -> add -> softmax -> matmul")
    print("=" * 72)
    mod = FuseByPattern([["matmul", "add", "softmax", "matmul"]])(mod, ctx)
    print(format_function(mod["attn"]))

    print("=" * 72)
    print("Standard FuseOps handles the remainder (the relu epilogue fuses")
    print("into the custom attention group's output)...")
    print("=" * 72)
    mod = transform.FuseOps()(mod, ctx)
    mod = transform.FuseTensorIR()(mod, ctx)
    fused = [f for _, f in mod.tir_functions() if f.attrs.get("fused")]
    print(f"merged tensor programs: {[f.name for f in fused]}")
    for f in fused:
        print(f"  {f.name}: {len(f.stages)} stages, "
              f"source ops = {f.attrs.get('source_ops')}")

    # Count kernels at runtime.
    mod2, _ = build_module()
    for use_pattern in (False, True):
        m2, _ = build_module()
        ctx2 = PassContext(device=TEST_DEVICE, enable_library_dispatch=False)
        m2 = transform.LegalizeOps()(m2, ctx2)
        m2 = transform.AnnotatePatternKind()(m2, ctx2)
        if use_pattern:
            m2 = FuseByPattern([["matmul", "add", "softmax", "matmul"]])(m2, ctx2)
        m2 = transform.FuseOps()(m2, ctx2)
        m2 = transform.FuseTensorIR()(m2, ctx2)
        m2 = transform.InsertKills()(
            transform.MemoryPlan()(transform.LowerCallTIR()(m2, ctx2), ctx2), ctx2
        )
        exe = transform.VMCodegen()(m2, ctx2)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("attn", NDArray.abstract((M, D), "f32"),
               NDArray.abstract((D, M), "f32"), NDArray.abstract((M, D), "f32"))
        label = "custom + standard" if use_pattern else "standard only    "
        print(f"  {label}: {vm.stats.kernel_launches} kernels per call")

    # Numerics survive the whole composition.
    m3, _ = build_module()
    ctx3 = PassContext(device=TEST_DEVICE, enable_library_dispatch=False)
    m3 = transform.LegalizeOps()(m3, ctx3)
    m3 = transform.AnnotatePatternKind()(m3, ctx3)
    m3 = FuseByPattern([["matmul", "add", "softmax", "matmul"]])(m3, ctx3)
    m3 = transform.FuseOps()(m3, ctx3)
    m3 = transform.FuseTensorIR()(m3, ctx3)
    m3 = transform.InsertKills()(
        transform.MemoryPlan()(transform.LowerCallTIR()(m3, ctx3), ctx3), ctx3
    )
    vm = VirtualMachine(transform.VMCodegen()(m3, ctx3), TEST_DEVICE, concrete=True)
    rng = np.random.default_rng(0)
    q = rng.standard_normal((M, D)).astype(np.float32)
    k_t = rng.standard_normal((D, M)).astype(np.float32)
    v = rng.standard_normal((M, D)).astype(np.float32)
    got = vm.run("attn", NDArray.from_numpy(q), NDArray.from_numpy(k_t),
                 NDArray.from_numpy(v)).numpy()
    scores = q @ k_t + mask
    e = np.exp(scores - scores.max(-1, keepdims=True))
    want = np.maximum(e / e.sum(-1, keepdims=True) @ v, 0)
    print(f"\nmax |err| vs NumPy reference: {np.abs(got - want).max():.2e}")


if __name__ == "__main__":
    main()
