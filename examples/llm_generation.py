"""End-to-end LLM text generation with a KV cache (paper §5.1 workload).

Builds a small Llama-architecture model through the nn.Module frontend,
compiles it once, and then generates greedily: one ``prefill`` over the
prompt, followed by ``decode`` steps whose KV caches grow by one position
each token — the ``m -> m+1`` symbolic shape relation flowing through the
whole compiled module.

Run:  python examples/llm_generation.py
"""

import numpy as np

from repro import transform
from repro.models import LlamaConfig, ReferenceLlama, build_llama, empty_caches
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

CFG = LlamaConfig(
    name="demo-llama", hidden_size=32, intermediate_size=64,
    num_layers=3, num_heads=4, num_kv_heads=2, vocab_size=64,
    context_length=64, dtype="f32",
)


def main():
    exported = build_llama(CFG)
    exported.module.initialize(seed=42, scale=0.2)
    print(f"model: {CFG.name}, {exported.module.num_parameters():,} parameters, "
          f"{len(exported.mod)} functions/tensor-programs in the IRModule")

    exe = transform.build(
        exported.mod, TEST_DEVICE,
        sym_var_upper_bounds={"b": 4, "s": 64, "m": 64},
    )
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    params = exported.concrete_params()

    prompt = np.array([[5, 17, 3, 42, 8]], dtype=np.int64)
    max_new = 12

    # Prefill the prompt.
    result = vm.run("prefill", NDArray.from_numpy(prompt),
                    *empty_caches(CFG, 1, concrete=True), *params)
    logits, caches = result[0], list(result[1:])
    generated = []
    for step in range(max_new):
        next_token = int(logits.numpy()[0, -1].argmax())
        generated.append(next_token)
        tokens = NDArray.from_numpy(np.array([[next_token]], dtype=np.int64))
        result = vm.run("decode", tokens, *caches, *params)
        logits, caches = result[0], list(result[1:])
        cache_len = caches[0].shape[1]
        print(f"  step {step:2d}: token {next_token:3d}   "
              f"(KV cache length now {cache_len})")

    print(f"\nprompt  : {prompt[0].tolist()}")
    print(f"generated: {generated}")

    # Validate the whole generation against the NumPy reference model.
    reference = ReferenceLlama(
        CFG, {name: p.data for name, p in exported.param_order}
    )
    ref_logits, ref_caches = reference.forward(
        prompt, [np.zeros((1, 0, CFG.num_kv_heads, CFG.head_dim), np.float32)]
        * (2 * CFG.num_layers),
    )
    ref_generated = []
    for _ in range(max_new):
        tok = int(ref_logits[0, -1].argmax())
        ref_generated.append(tok)
        ref_logits, ref_caches = reference.forward(
            np.array([[tok]], dtype=np.int64), ref_caches
        )
    assert generated == ref_generated, "compiled output diverged from reference"
    print("generation matches the pure-NumPy reference token-for-token")

    stats = vm.stats
    print(f"\nexecution: {stats.kernel_launches} generated-kernel launches, "
          f"{stats.lib_calls} library calls, "
          f"{stats.graph_captures} graph captures, "
          f"{stats.graph_replays} graph replays")
    print(f"simulated device time: {stats.time_s * 1000:.3f} ms; "
          f"peak memory {stats.peak_bytes / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
