"""The paper's Figure 9 case study: fusing a *custom* quantization-decode
tensor program into a matmul — cross-level abstraction at work.

The 4-bit decode has no graph-level operator; it exists only as a
hand-written loop-level tensor program.  Watch the pipeline:

1. **analysis feedback** (Algorithm 1) classifies the decode as Injective
   and the matmul as OutputEwiseFusible — no manual operator annotation;
2. **FuseOps** (Algorithm 2) groups the two ``call_tir`` bindings into a
   subgraph function;
3. **FuseTensorIR** merges the tensor programs, inlining the decode into
   the matmul's multiply-accumulate read: the f16 weight matrix never
   touches global memory — which is why 4-bit LLMs fit on phones (§5.3).

Run:  python examples/custom_quantization.py
"""

import numpy as np

from repro import sym, tir, transform
from repro.core import BlockBuilder, TensorAnn, format_module
from repro.frontend import decode_prim_func, dequantize_weight, quantize_weight
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import PassContext

K, N = 64, 32
BITS, GROUP = 4, 16


def build_module():
    bb = BlockBuilder()
    decode_gv = bb.add_func(decode_prim_func(K, N, BITS, GROUP), "decode_q4")

    n = sym.SymVar("n")
    f = tir.TirBuilder("mm")
    f.attr("op_kind", "matmul")
    x = f.arg("X", (n, K), "f32")
    w = f.arg("W", (K, N), "f32")
    y = f.out("Y", (n, N), "f32")
    i, j = f.spatial(n, N)
    kk = f.reduce(K)
    f.store(y, [i, j], x[i, kk] * w[kk, j], combiner="sum", init=0.0)
    mm_gv = bb.add_func(f.build(), "mm")

    with bb.function(
        "main",
        {
            "x": TensorAnn(("n", K), "f32"),
            "Wdata": TensorAnn((K, N * BITS // 32), "u32"),
            "Wscale": TensorAnn((K, N // GROUP), "f32"),
        },
    ) as frame:
        x, wdata, wscale = frame.params
        nn = bb.shape_var("n")
        with bb.dataflow():
            w = bb.call_tir(decode_gv, [wdata, wscale], TensorAnn((K, N), "f32"))
            out = bb.call_tir(mm_gv, [x, w], TensorAnn((nn, N), "f32"))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get()


def main():
    mod = build_module()
    ctx = PassContext(device=TEST_DEVICE, enable_library_dispatch=False)

    print("=" * 72)
    print("Step 1 — analysis feedback classifies the tensor programs:")
    print("=" * 72)
    transform.AnnotatePatternKind()(mod, ctx)
    for name in ("decode_q4", "mm"):
        print(f"  {name:10s} -> {mod[name].attrs['compute_pattern'].name}")

    print()
    print("=" * 72)
    print("Step 2 — FuseOps groups them into a subgraph function:")
    print("=" * 72)
    fused = transform.FuseOps()(mod, ctx)
    print(format_module(fused))

    print()
    print("=" * 72)
    print("Step 3 — FuseTensorIR merges into one kernel (decode inlined):")
    print("=" * 72)
    merged = transform.FuseTensorIR()(fused, ctx)
    print(format_module(merged))
    fused_prim = next(f for _, f in merged.tir_functions() if f.attrs.get("fused"))
    print(f"\nmerged kernel stages: {len(fused_prim.stages)} "
          f"(decode inlined into the FMA), intermediates: "
          f"{len(fused_prim.intermediate_buffers())}")

    # Numerics: the fused module matches dequantize-then-matmul.
    rng = np.random.default_rng(7)
    weight = rng.standard_normal((K, N)).astype(np.float32) * 0.1
    packed, scales = quantize_weight(weight, BITS, GROUP)
    w_ref = dequantize_weight(packed, scales, BITS, GROUP, N)

    exe = transform.build(build_module(), TEST_DEVICE, enable_library_dispatch=False)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    x = rng.standard_normal((5, K)).astype(np.float32)
    out = vm.run(
        "main",
        NDArray.from_numpy(x),
        NDArray.from_numpy(packed),
        NDArray.from_numpy(scales),
    )
    err = np.abs(out.numpy() - x @ w_ref).max()
    print(f"\nfused numerics vs dequantized reference: max |err| = {err:.2e}")

    # Performance: fusion removes the materialized weight from global memory.
    for fusion in (False, True):
        exe = transform.build(
            build_module(), TEST_DEVICE, enable_fusion=fusion,
            enable_library_dispatch=False, enable_cuda_graph=False,
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run(
            "main",
            NDArray.abstract((128, K), "f32"),
            NDArray.abstract((K, N * BITS // 32), "u32"),
            NDArray.abstract((K, N // GROUP), "f32"),
        )
        label = "fused " if fusion else "unfused"
        print(f"  {label}: kernels={vm.stats.kernel_launches}, "
              f"allocated={vm.stats.allocated_bytes_total}B, "
              f"simulated time={vm.stats.time_s * 1e6:.2f}us")


if __name__ == "__main__":
    main()
