"""First-class symbolic shapes in action (paper Figures 3 and 7).

* forward deduction tracks exact symbolic relations — ``flatten`` of an
  ``(n, 4)`` tensor is ``(n*4,)``, not "unknown";
* data-dependent operators (``unique``) fall back to coarse annotations,
  and ``match_cast`` re-introduces a fresh symbolic variable ``m`` with a
  runtime check;
* interprocedural deduction derives call-site annotations from callee
  *signatures alone*, binding symbolic variables per call (Fig. 7).

Run:  python examples/dynamic_shape_deduction.py
"""

import numpy as np

from repro import ops, sym, transform
from repro.core import (
    BlockBuilder,
    Call,
    ShapeAnn,
    TensorAnn,
    format_function,
    shape,
    sym_var,
)
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine


def figure3_module():
    """The paper's Figure 3, lower half, verbatim."""
    bb = BlockBuilder()
    with bb.function("symbolic_shape_fn", {"x": TensorAnn(("n", 2, 2), "f32")}) as frame:
        (x,) = frame.params
        n = bb.shape_var("n")
        m = sym_var("m")
        with bb.dataflow():
            lv0 = bb.emit(ops.reshape(x, shape(n, 4)))
            lv1 = bb.emit(ops.flatten(lv0))
            lv2 = bb.emit(ops.unique(lv1))
            lv3 = bb.match_cast(lv2, TensorAnn((m,), "f32"))
            lv4 = bb.emit(ops.exp(lv3))
            gv = bb.emit_output(lv4)
        bb.emit_func_output(gv)
    return bb.get()


def figure7_module():
    """Interprocedural deduction from signatures (Fig. 7's subfn)."""
    bb = BlockBuilder()
    # subfn(s: Shape(["n", "m"])) -> Tensor(("n * m",), "f32")
    with bb.function(
        "subfn", {"s": ShapeAnn(["n", "m"])},
        ret_ann=TensorAnn(("n * m",), "f32"),
    ) as frame:
        (s,) = frame.params
        n, m = bb.shape_var("n"), bb.shape_var("m")
        with bb.dataflow():
            out = bb.emit(ops.ones(shape(sym.simplify(n * m)), "f32"))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    subfn = bb.mod.get_global_var("subfn")

    with bb.function("caller", {"x": TensorAnn(("n",), "f32")}) as frame:
        (x,) = frame.params
        n = bb.shape_var("n")
        with bb.dataflow():
            lv0 = bb.emit(Call(subfn, [shape(n, 4)]))       # -> (n*4,)
            lv1 = bb.emit(Call(subfn, [shape(3, 4)]))       # -> (12,)
            lv2 = bb.emit(Call(subfn, [shape(n + 1, 4)]))   # -> ((n+1)*4,)
            gv = bb.emit_output(lv1)
        bb.emit_func_output(gv)
    return bb.get()


def main():
    print("=" * 72)
    print("Figure 3 — symbolic relations survive every operator:")
    print("=" * 72)
    mod = figure3_module()
    print(format_function(mod["symbolic_shape_fn"]))
    print()
    print("Deduced annotations, binding by binding:")
    for binding in mod["symbolic_shape_fn"].body.blocks[0].bindings:
        print(f"  {binding.var.name_hint:5s}: {binding.var.ann}")

    # Execute: unique's output length is data-dependent; match_cast binds
    # the fresh m at runtime and the pipeline flows it onwards.
    exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    x = np.array([[[1.0, 2.0], [2.0, 1.0]], [[3.0, 1.0], [2.0, 4.0]]],
                 dtype=np.float32)
    out = vm.run("symbolic_shape_fn", NDArray.from_numpy(x))
    print(f"\ninput 8 values with 4 distinct -> output shape {out.shape}")
    np.testing.assert_allclose(out.numpy(), np.exp(np.unique(x)), rtol=1e-6)
    print("matches np.exp(np.unique(x)) exactly")

    print()
    print("=" * 72)
    print("Figure 7 — deduction across subgraph function calls:")
    print("=" * 72)
    mod = figure7_module()
    print(format_function(mod["caller"]))
    print()
    print("Call-site annotations, derived from subfn's *signature* only:")
    for binding in mod["caller"].body.blocks[0].bindings[:3]:
        print(f"  {binding.var.name_hint:5s}: {binding.var.ann}")


if __name__ == "__main__":
    main()
