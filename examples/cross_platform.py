"""Universal deployment: one model, many emerging platforms (paper §5.3).

Compiles a 4-bit quantized Llama2-7B at full paper configuration for every
device in the paper's Table 3 — phone GPUs, an SBC, a handheld, an edge
box, and in-browser WebGPU — and reports simulated single-sequence
throughput plus the static memory plan that makes the memory-constrained
targets viable ("Without memory planning ... these models are not even
runnable on some of the environments").

Runs in abstract mode: the full-size module compiles and executes its real
instruction stream; kernels meter on each device's analytical model
instead of computing values.

Run:  python examples/cross_platform.py
"""

import dataclasses

from repro.baselines import kv_cache_bytes, weights_bytes
from repro.bench import RelaxLLM
from repro.models import LLAMA2_7B
from repro.runtime import (
    IPHONE_14_PRO,
    JETSON_ORIN,
    ORANGE_PI_5,
    SAMSUNG_S23,
    STEAM_DECK,
    WEBGPU_M3_MAX,
)

DEVICES = [
    IPHONE_14_PRO,
    SAMSUNG_S23,
    ORANGE_PI_5,
    STEAM_DECK,
    JETSON_ORIN,
    WEBGPU_M3_MAX,
]

CFG = dataclasses.replace(
    LLAMA2_7B, name="Llama2-7B-q4", quantize_bits=4, context_length=2048
)
BOUNDS = {"b": 1, "s": 512, "m": 768}
CONTEXT = 256


def main():
    print(f"model: {CFG.name} "
          f"({weights_bytes(CFG) / (1 << 30):.2f} GiB quantized weights)\n")
    header = (f"{'device':<38}{'backend':>9}{'tok/s':>9}{'kernels':>9}"
              f"{'lib':>6}{'footprint':>12}")
    print(header)
    print("-" * len(header))

    for device in DEVICES:
        runner = RelaxLLM(CFG, device, sym_var_upper_bounds=BOUNDS)
        tput = runner.decode_throughput(1, CONTEXT)
        stats = runner.vm.stats
        footprint = (
            weights_bytes(CFG)
            + kv_cache_bytes(CFG, 1, BOUNDS["m"])
            + stats.allocated_bytes_total
        )
        fits = "ok" if footprint < device.vram_bytes else "OVER BUDGET"
        print(
            f"{device.name:<38}{device.backend:>9}{tput:>9.1f}"
            f"{stats.kernel_launches:>9}{stats.lib_calls:>6}"
            f"{footprint / (1 << 30):>9.2f}GiB  {fits}"
        )

    print("\nNotes:")
    print("  * devices without vendor libraries run entirely on")
    print("    compiler-generated kernels (lib column = 0) — the paper's")
    print("    point: codegen replaces per-platform hand-written kernels;")
    print("  * the quantization decode is fused into every matmul, so the")
    print("    f16 weights never materialize (examples/custom_quantization.py).")


if __name__ == "__main__":
    main()
