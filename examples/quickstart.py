"""Quickstart: build, compile and run a dynamic-shape model with Relax.

Walks the full journey of the paper's Figure 1:

1. construct a graph-level program with *symbolic shapes* — the batch
   dimension ``n`` is unknown at compile time;
2. run the cross-level optimization pipeline (library dispatch,
   legalization to tensor programs, fusion, memory planning, ...);
3. execute the compiled module on the VM — once compiled, the same module
   serves any batch size, with runtime shape checks at the boundary.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const, format_module
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine, disassemble_function


def build_model():
    """main(x: Tensor((n, 16), f32)) = relu(x @ W1) @ W2 + b"""
    rng = np.random.default_rng(0)
    w1 = rng.standard_normal((16, 32)).astype(np.float32)
    w2 = rng.standard_normal((32, 8)).astype(np.float32)
    b = rng.standard_normal((8,)).astype(np.float32)

    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 16), "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, const(w1)))
            h = bb.emit(ops.relu(h))
            out = bb.emit(ops.matmul(h, const(w2)))
            out = bb.emit(ops.add(out, const(b)))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get(), (w1, w2, b)


def main():
    mod, (w1, w2, b) = build_model()

    print("=" * 72)
    print("High-level program (note the symbolic batch dimension n):")
    print("=" * 72)
    print(format_module(mod))

    # Compile: the full Figure 13 pipeline.
    exe = transform.build(mod, TEST_DEVICE, sym_var_upper_bounds={"n": 256})
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)

    print()
    print("=" * 72)
    print("Compiled once; now running three different batch sizes:")
    print("=" * 72)
    rng = np.random.default_rng(1)
    for n in (1, 4, 100):
        x = rng.standard_normal((n, 16)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        expect = np.maximum(x @ w1, 0) @ w2 + b
        err = np.abs(out.numpy() - expect).max()
        print(f"  batch {n:4d}: output {out.shape}, max |err| vs NumPy = {err:.2e}")

    print()
    print("Execution statistics (simulated device clock + real allocations):")
    for key, value in vm.stats.summary().items():
        print(f"  {key:>18}: {value:.6g}")

    print()
    print("=" * 72)
    print("Compiled VM instructions (the paper's §4.7 end state):")
    print("=" * 72)
    print(disassemble_function(exe.functions["main"]))

    # The boundary checks of §4.1 fire on malformed inputs:
    bad = NDArray.from_numpy(np.zeros((3, 17), dtype=np.float32))
    try:
        vm.run("main", bad)
    except Exception as err:
        print(f"\nRuntime shape check caught a bad input: {err}")


if __name__ == "__main__":
    main()
